#include "cli/campaign.hpp"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "cli/campaign_bench.hpp"
#include "cli/options.hpp"
#include "cli/registry.hpp"
#include "core/atomic_file.hpp"
#include "core/faultinject.hpp"
#include "core/json_writer.hpp"
#include "core/lockfile.hpp"
#include "core/parallel_runner.hpp"
#include "core/trace_io.hpp"
#include "scenario/registry.hpp"
#include "sim/isa.hpp"

namespace omv::cli {

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create directory '" + dir +
                             "': " + ec.message());
  }
}

RunContext::RunContext(std::string harness, std::size_t jobs,
                       std::string out_dir,
                       std::optional<scenario::ScenarioSpec> scenario,
                       ContextMode mode)
    : harness_(std::move(harness)),
      jobs_(jobs == 0 ? 1 : jobs),
      out_dir_(std::move(out_dir)),
      scenario_(std::move(scenario)),
      mode_(mode) {
  if (caching() && !enumerating()) {
    ensure_dir(out_dir_ + "/cache");
  }
}

void RunContext::emit(std::string_view text) {
  if (enumerating()) return;
  if (capture_ != nullptr) {
    capture_->append(text);
    return;
  }
  // omvlint: allow(atomic-writes) stdout emission, not a file commit — this IS the capture-replay sink the rule protects
  std::fwrite(text.data(), 1, text.size(), stdout);
}

void RunContext::print(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string text;
  if (n > 0) {
    text.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(text.data(), text.size(), fmt, args2);
    text.resize(static_cast<std::size_t>(n));
  }
  va_end(args2);
  emit(text);
}

struct CellScheduler::Impl {
  Impl(std::size_t cell_jobs, std::vector<double> unit_costs)
      : pool(cell_jobs), remaining(std::move(unit_costs)) {}
  CellPool pool;
  std::mutex mutex;
  std::vector<double> remaining;  ///< enumerated cost not yet completed.
};

CellScheduler::CellScheduler(std::size_t cell_jobs,
                             std::vector<double> unit_costs)
    : impl_(std::make_shared<Impl>(cell_jobs, std::move(unit_costs))) {}

std::size_t CellScheduler::workers() const noexcept {
  return impl_->pool.workers();
}

void CellScheduler::run_cell(std::size_t unit, double cost,
                             const std::function<void()>& fn) {
  if (stopping()) {
    throw snap::CheckpointStop(
        "campaign checkpoint stop: cell dispatch halted before this cell "
        "started");
  }
  double priority = 0.0;
  {
    std::lock_guard lock(impl_->mutex);
    if (unit < impl_->remaining.size()) priority = impl_->remaining[unit];
  }
  // The cell's cost leaves the unit's remaining work whether it succeeds,
  // quarantines, or stops — priority must keep draining either way.
  struct Drain {
    Impl* impl;
    std::size_t unit;
    double cost;
    ~Drain() {
      std::lock_guard lock(impl->mutex);
      if (unit < impl->remaining.size()) {
        impl->remaining[unit] =
            impl->remaining[unit] > cost ? impl->remaining[unit] - cost : 0.0;
      }
    }
  } drain{impl_.get(), unit, cost};
  impl_->pool.run(priority, fn);
}

std::string_view engine_version() {
  if (const char* v = std::getenv("OMNIVAR_ENGINE_VERSION"); v && *v != '\0') {
    return v;
  }
  return kEngineVersion;
}

namespace {

/// OMNIVAR_CHECKPOINT_STOP_AFTER: test/CI kill switch — abort the process
/// (exit code 3) after N checkpoint writes so a resume can be exercised in
/// a fresh process. 0 / unset / malformed = off.
std::size_t checkpoint_stop_after_env() {
  if (const char* e = std::getenv("OMNIVAR_CHECKPOINT_STOP_AFTER")) {
    std::size_t n = 0;
    if (parse_uint(e, n)) return n;
  }
  return 0;
}

}  // namespace

void RunContext::configure_checkpoints(std::size_t every, std::string resume) {
  ckpt_every_ = every;
  resume_sel_ = std::move(resume);
}

void RunContext::configure_supervision(std::size_t retries,
                                       std::chrono::milliseconds timeout) {
  supervision_.retries = retries;
  supervision_.timeout = timeout;
}

void RunContext::note_platform(const std::string& name,
                               const std::string& fingerprint) {
  for (const auto& [n, f] : platforms_) {
    if (n == name && f == fingerprint) return;
  }
  platforms_.emplace_back(name, fingerprint);
}

RunMatrix RunContext::protocol(const std::string& label,
                               const ExperimentSpec& spec, SpecKey config,
                               const std::function<RunMatrix()>& compute,
                               const ExtraSave& save_extra,
                               const ExtraLoad& load_extra) {
  // Every cell key absorbs the engine generation: a cache dir written by
  // another simulator generation hashes apart wholesale.
  config.add("engine", engine_version());
  config.add("harness", harness_);
  config.add("label", label);
  config.add_spec(spec);
  const std::string hash = config.hex();

  if (enumerating()) {
    // Declare-only pass: record the cell exactly as a serial execution
    // would key it, and hand back a placeholder matrix of the spec's
    // shape. Values are small, distinct and non-zero so downstream
    // statistics (means, CVs, normalizations) stay finite — the harness's
    // output is discarded anyway.
    CellPlan plan;
    plan.label = label;
    plan.hash = hash;
    plan.cost = static_cast<double>(spec.runs) *
                static_cast<double>(spec.warmup + spec.reps);
    plan_.push_back(std::move(plan));
    RunMatrix placeholder(label);
    for (std::size_t r = 0; r < spec.runs; ++r) {
      std::vector<double> row(spec.reps);
      for (std::size_t k = 0; k < spec.reps; ++k) {
        row[k] = 1.0 + 1e-3 * static_cast<double>(r) +
                 1e-6 * static_cast<double>(k);
      }
      placeholder.add_run(std::move(row));
    }
    return placeholder;
  }

  CellRecord rec;
  rec.label = label;
  rec.hash = hash;
  rec.seed = spec.seed;
  rec.runs = spec.runs;
  rec.reps = spec.reps;
  rec.warmup = spec.warmup;

  const std::string stem =
      caching() ? out_dir_ + "/cache/" + hash : std::string();

  // Expected .key commit-file content: the cache schema stamp line, then
  // the canonical key. A whole-file comparison rejects pre-stamp caches
  // (no stamp line), other cache generations, hash collisions and
  // stale/corrupt entries alike — all degrade to a recompute.
  const std::string expected_key =
      std::string(kCacheKeySchema) + "\n" + config.canonical();

  // Attempts a validated cache load. Returns nullopt on a miss OR a
  // degraded entry (torn/truncated/corrupt data behind a valid .key):
  // the cache can never make a campaign wrong, only faster. Invoked twice
  // on the concurrent path — once up front, once after waiting out another
  // campaign's lease (which usually committed exactly this entry).
  const auto load_cached = [&]() -> std::optional<RunMatrix> {
    std::string stored_key;
    if (!core::read_file(stem + ".key", stored_key) ||
        stored_key != expected_key) {
      return std::nullopt;
    }
    try {
      RunMatrix m = io::load_run_matrix(stem + ".csv", label);
      // Shape must match the spec exactly: protocol cells are full
      // spec.runs x spec.reps rectangles, so a parseable-but-truncated
      // file (interrupted copy of a campaign dir) must degrade to a
      // recompute, never be served as valid data.
      bool shape_ok = m.runs() == spec.runs;
      for (std::size_t r = 0; shape_ok && r < m.runs(); ++r) {
        shape_ok = m.run(r).size() == spec.reps;
      }
      if (shape_ok && (!load_extra || load_extra(stem))) return m;
      std::fprintf(stderr,
                   "[omnivar] cache entry %s for '%s' is inconsistent; "
                   "recomputing\n",
                   hash.c_str(), label.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "[omnivar] cache entry %s for '%s' unreadable (%s); "
                   "recomputing\n",
                   hash.c_str(), label.c_str(), e.what());
    }
    // The entry is invalidated: its checkpoint sidecar (if one survived)
    // describes repetitions of data we are about to discard — drop it so
    // --resume auto cannot resurrect a dead cell's progress.
    core::remove_file_if_exists(stem + ".snap");
    return std::nullopt;
  };

  if (caching()) {
    if (auto m = load_cached()) {
      ++hits_;
      rec.cached = true;
      cells_.push_back(std::move(rec));
      return *m;
    }
  }

  // Cold cell. Take the per-cell advisory lease so a concurrent campaign
  // sharing this --out computes each cell once, not twice. If we had to
  // wait for another holder, it very likely committed this entry — re-check
  // before computing. A nullopt lease (wait expired on a live-but-stuck
  // holder) is NOT an error: commits are atomic and deterministic, so an
  // un-leased duplicate compute produces identical bytes and the last
  // rename wins.
  std::optional<core::FileLease> lease;
  if (caching()) {
    bool waited = false;
    lease = core::FileLease::acquire(stem + ".lock",
                                     std::chrono::milliseconds(60000),
                                     &waited);
    if (waited) {
      if (auto m = load_cached()) {
        ++hits_;
        rec.cached = true;
        cells_.push_back(std::move(rec));
        return *m;
      }
    }
  }

  // Arm this cell's checkpoint policy for the compute call. The snapshot
  // rides the cache entry's stem (".snap" sidecar) and is stamped with the
  // engine + scenario + cell identity, so a resume can never cross cells.
  if (caching() && (ckpt_every_ > 0 || !resume_sel_.empty())) {
    ckpt_policy_ = snap::CheckpointPolicy{};
    ckpt_policy_.path = stem + ".snap";
    ckpt_policy_.every_reps = ckpt_every_;
    ckpt_policy_.stop_after = checkpoint_stop_after_env();
    ckpt_policy_.stamp.engine = std::string(engine_version());
    ckpt_policy_.stamp.scenario = scenario_ ? scenario_->fingerprint() : "";
    ckpt_policy_.stamp.cell = hash;
    if (resume_sel_ == "auto") {
      // Each cell resumes from its own sidecar when one survived a prior
      // interrupted invocation; cells without one start fresh.
      if (std::filesystem::exists(ckpt_policy_.path)) {
        ckpt_policy_.resume_from = ckpt_policy_.path;
      }
    } else if (!resume_sel_.empty()) {
      // An explicit snapshot belongs to exactly one cell: its stamp names
      // the cell hash. Other cells run fresh.
      if (auto st = snap::try_peek_stamp(resume_sel_);
          st && st->cell == hash) {
        ckpt_policy_.resume_from = resume_sel_;
      }
    }
    ckpt_active_ = ckpt_policy_.engaged();
  }
  // Disarm even when compute throws (CheckpointStop unwinds through here).
  struct Disarm {
    bool* flag;
    ~Disarm() { *flag = false; }
  } disarm{&ckpt_active_};

  // Compute-and-commit runs supervised: injected faults, the cooperative
  // cell timeout, and commit-path I/O errors are all retried (fresh
  // attempt = fresh compute = identical data) and, once the retry budget
  // is spent, quarantined. Commit order matters — data first, sidecars
  // next, the .key commit marker LAST — so a crash or injected fault at
  // any point leaves either no marker (a plain miss) or a fully committed
  // entry; never a marker over torn data.
  const auto supervised = [&]() -> RunMatrix {
    return supervise_cell(supervision_, label, hash, [&] {
      RunMatrix computed = compute();
      // Normalize to the cell label: the compute path labels matrices
      // with spec.name while a cache load uses `label` — a cold/warm run
      // must return indistinguishable objects.
      computed.set_label(label);
      if (caching()) {
        core::atomic_write_file(stem + ".csv",
                                io::run_matrix_to_csv(computed), "cache");
        if (save_extra) save_extra(stem);
        core::atomic_write_file(stem + ".key", expected_key, "key");
      }
      return computed;
    });
  };
  RunMatrix m = [&] {
    try {
      if (sched_ != nullptr) {
        // Campaign scheduler path: the supervised compute-and-commit runs
        // on a pool worker (the supervisor arms the worker's own deadline
        // slot; shard threads it spawns inherit it) while this unit
        // thread blocks — cells within a unit stay sequential, units
        // overlap through the shared pool.
        const double cost = static_cast<double>(spec.runs) *
                            static_cast<double>(spec.warmup + spec.reps);
        RunMatrix result;
        sched_->run_cell(unit_, cost, [&] { result = supervised(); });
        return result;
      }
      return supervised();
    } catch (const CellQuarantined& q) {
      // Record + announce here (stdout: the failure is part of the
      // harness's science report), then let the unwind continue to the
      // campaign driver.
      failures_.push_back(q.failure);
      this->print(
          "[omnivar] FAILED cell '%s' (%s after %zu attempt(s)): %s\n",
          q.failure.label.c_str(), q.failure.taxonomy.c_str(),
          q.failure.attempts, q.failure.error.c_str());
      throw;
    }
  }();
  ++misses_;
  cells_.push_back(std::move(rec));
  return m;
}

void RunContext::series(const std::string& name, const report::Series& s,
                        int digits) {
  emit(s.render(report::Format::ascii, digits) + "\n");
  series_.push_back({name, s.x_name(), s.names(), s.points()});
}

void RunContext::table(const std::string& name, const report::Table& t) {
  emit(t.render() + "\n");
  record_table(name, t);
}

void RunContext::record_table(const std::string& name,
                              const report::Table& t) {
  tables_.push_back({name, t.header(), t.data()});
}

void RunContext::verdict(bool ok, const std::string& text) {
  this->print("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", text.c_str());
  verdicts_.push_back({ok, text});
}

void RunContext::metric(const std::string& name, double value) {
  metrics_.push_back({name, value});
}

bool RunContext::all_ok() const noexcept {
  for (const auto& v : verdicts_) {
    if (!v.ok) return false;
  }
  return true;
}

std::string RunContext::artifact_json(const std::string& description) const {
  json::JsonWriter w;
  w.begin_object();
  w.key("schema").value("omnivar-artifact-v2");
  w.key("harness").value(harness_);
  w.key("description").value(description);

  // Scenario provenance: the active --scenario selection (null = the
  // paper's Dardel+Vera default), plus every platform the harness actually
  // ran on, so archived runs are self-describing.
  w.key("scenario");
  if (scenario_) {
    w.begin_object();
    w.key("name").value(scenario_->name);
    w.key("display").value(scenario_->display);
    w.key("fingerprint").value(scenario_->fingerprint());
    w.key("geometry").value(scenario_->geometry_summary());
    w.key("machine").begin_object();
    w.key("label").value(scenario_->machine.label);
    if (scenario_->machine.asymmetric()) {
      // v2 node-group geometry: the uniform fields are meaningless here;
      // the groups block is the machine definition.
      w.key("groups").begin_array();
      for (const auto& g : scenario_->machine.groups) {
        w.begin_object();
        w.key("name").value(g.name);
        if (g.socket_pinned()) {
          w.key("socket").value(g.socket);
        } else {
          w.key("sockets").value(g.sockets);
        }
        w.key("numa").value(g.numa);
        w.key("cores").value(g.cores);
        w.key("smt").value(g.smt);
        w.key("base_ghz").value(g.base_ghz);
        w.key("max_ghz").value(g.max_ghz);
        w.key("work_rate").value(g.work_rate);
        w.end_object();
      }
      w.end_array();
    } else {
      w.key("sockets").value(scenario_->machine.sockets);
      w.key("numa_per_socket").value(scenario_->machine.numa_per_socket);
      w.key("cores_per_numa").value(scenario_->machine.cores_per_numa);
      w.key("smt").value(scenario_->machine.smt);
      w.key("base_ghz").value(scenario_->machine.base_ghz);
      w.key("max_ghz").value(scenario_->machine.max_ghz);
    }
    w.end_object();
    w.end_object();
  } else {
    w.null();
  }
  w.key("platforms").begin_array();
  for (const auto& [name, fingerprint] : platforms_) {
    w.begin_object();
    w.key("name").value(name);
    w.key("fingerprint").value(fingerprint);
    w.end_object();
  }
  w.end_array();

  w.key("cells").begin_array();
  for (const auto& c : cells_) {
    w.begin_object();
    w.key("label").value(c.label);
    w.key("spec_hash").value(c.hash);
    w.key("seed").value(static_cast<std::uint64_t>(c.seed));
    w.key("runs").value(c.runs);
    w.key("reps").value(c.reps);
    w.key("warmup").value(c.warmup);
    w.key("csv").value("cache/" + c.hash + ".csv");
    w.end_object();
  }
  w.end_array();

  w.key("series").begin_array();
  for (const auto& s : series_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("x_name").value(s.x_name);
    w.key("columns").begin_array();
    for (const auto& c : s.columns) w.value(c);
    w.end_array();
    w.key("points").begin_array();
    for (const auto& [x, ys] : s.points) {
      w.begin_array();
      w.value(x);
      for (const double y : ys) w.value(y);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("tables").begin_array();
  for (const auto& t : tables_) {
    w.begin_object();
    w.key("name").value(t.name);
    w.key("header").begin_array();
    for (const auto& h : t.header) w.value(h);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_array();
      for (const auto& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("metrics").begin_array();
  for (const auto& m : metrics_) {
    w.begin_object();
    w.key("name").value(m.name);
    w.key("value").value(m.value);
    w.end_object();
  }
  w.end_array();

  w.key("verdicts").begin_array();
  for (const auto& v : verdicts_) {
    w.begin_object();
    w.key("ok").value(v.ok);
    w.key("text").value(v.text);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

namespace {

void print_usage(const char* argv0, bool campaign) {
  std::fprintf(stderr,
               "usage: %s [--list] [--scenarios] [--isa-report] [--version] "
               "[--jobs N] [--cell-jobs N] [--scenario S]... "
               "[--scenario-set FILE] [--plan] [--out DIR] "
               "[--checkpoint-every N] [--resume SRC] [--retry-cells N] "
               "[--cell-timeout MS] [--fault-spec SPEC]%s\n"
               "  --list       list registered harnesses\n"
               "  --scenarios  list the scenario catalog\n"
               "  --isa-report list dispatchable batched-kernel ISA levels\n"
               "  --version    print engine version, snapshot format and "
               "dispatched ISA\n"
               "%s"
               "  --jobs N     shard each protocol's runs over N workers\n"
               "               (0 = one per hardware thread; default: "
               "OMNIVAR_JOBS, else serial)\n"
               "  --cell-jobs N\n"
               "               run up to N protocol cells concurrently "
               "across all\n"
               "               selected harnesses and scenarios (0 = one "
               "per hardware\n"
               "               thread; default: OMNIVAR_CELL_JOBS, else 1 "
               "— serial);\n"
               "               output is replayed in registry x scenario "
               "order, so\n"
               "               stdout/artifacts/cache are byte-identical "
               "at any N\n"
               "  --scenario S run on scenario S: a catalog name or a "
               "scenario-file\n"
               "               path (repeatable: the campaign fans out "
               "over every\n"
               "               listed scenario; default: OMNIVAR_SCENARIO, "
               "else the\n"
               "               paper's Dardel+Vera pair)\n"
               "  --scenario-set FILE\n"
               "               append scenario selectors from FILE (one "
               "per line,\n"
               "               '#' comments) to the --scenario list\n"
               "  --plan       enumerate every protocol cell the selection "
               "would run\n"
               "               (harness, scenario, label, spec hash, cost) "
               "and exit\n"
               "  --out DIR    campaign directory: per-harness JSON "
               "artifacts,\n"
               "               campaign.json, and the spec-hash result "
               "cache\n"
               "  --checkpoint-every N\n"
               "               checkpoint each protocol cell every N timed "
               "reps to a\n"
               "               .snap cache sidecar (requires --out; default: "
               "\n"
               "               OMNIVAR_CHECKPOINT_EVERY, else off)\n"
               "  --resume SRC resume interrupted cells: 'auto' scans each "
               "cell's\n"
               "               sidecar, a path names one snapshot (requires "
               "--out)\n"
               "  --retry-cells N\n"
               "               retry a failing protocol cell N times (seeded\n"
               "               exponential backoff) before quarantining it\n"
               "               (default: OMNIVAR_RETRY_CELLS, else 0)\n"
               "  --cell-timeout MS\n"
               "               per-cell wall-clock budget, enforced "
               "cooperatively at\n"
               "               repetition boundaries (default: "
               "OMNIVAR_CELL_TIMEOUT_MS,\n"
               "               else unlimited)\n"
               "  --fault-spec SPEC\n"
               "               arm deterministic fault injection, e.g.\n"
               "               'cell_throw@3,torn_write:cache@2' (default:\n"
               "               OMNIVAR_FAULT_SPEC, else off)\n"
               "exit codes: 0 ok, 2 usage, 3 checkpoint stop, 4 cell(s) "
               "quarantined,\n"
               "            1 other failure\n",
               argv0, campaign ? " [--only GLOB]..." : "",
               campaign
                   ? "  --only GLOB  run only harnesses matching the glob "
                     "(repeatable)\n"
                   : "");
}

/// --version: the identity triple a snapshot stamp is checked against plus
/// the batched-kernel dispatch, one "key: value" per line on stdout.
void print_version() {
  std::printf("engine: %s\n", std::string(kEngineVersion).c_str());
  std::printf("snapshot-format: %s\n", snap::kSnapshotFormat);
  std::printf("isa: %s\n", sim::isa_name(sim::active_isa()));
}

/// Lists the batched-kernel ISA levels this host+build can dispatch to,
/// one per line in ascending order (best last) — the contract CI's
/// dispatch-matrix lane iterates over.
void print_isa_report() {
  for (const sim::Isa isa : sim::available_isas()) {
    std::printf("%s\n", sim::isa_name(isa));
  }
}

/// One-line stderr note of the resolved batched-kernel dispatch, so every
/// campaign log records which ISA produced its numbers.
void report_isa() {
  std::fprintf(stderr, "[omnivar] isa: %s%s\n",
               sim::isa_name(sim::active_isa()),
               sim::isa_overridden() ? " (OMNIVAR_ISA override)" : "");
}

void print_scenarios() {
  for (const auto& s : scenario::ScenarioRegistry::instance().all()) {
    std::printf("%-12s %-10s %s\n      %s\n", s.name.c_str(),
                s.display.c_str(), s.geometry_summary().c_str(),
                s.description.c_str());
  }
}

/// Resolves the --scenario / OMNIVAR_SCENARIO selection. Returns false
/// (with a stderr report) when the selection cannot be resolved.
bool resolve_scenario(const std::string& selection,
                      std::optional<scenario::ScenarioSpec>& out) {
  if (selection.empty()) return true;
  try {
    out = scenario::resolve(selection);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[omnivar] %s\n", e.what());
    return false;
  }
}

/// Resolves the checkpoint flags; reports and drops them when no --out dir
/// is configured (checkpoint snapshots ride the result cache).
void resolve_checkpoints(const Options& o, std::size_t& every,
                         std::string& resume) {
  every = effective_checkpoint_every(o.checkpoint_every);
  resume = o.resume;
  if ((every > 0 || !resume.empty()) && o.out_dir.empty()) {
    std::fprintf(stderr,
                 "[omnivar] ignoring --checkpoint-every/--resume: "
                 "checkpoint snapshots ride the result cache, which "
                 "requires --out\n");
    every = 0;
    resume.clear();
  }
}

void report_option_errors(const Options& o) {
  for (const auto& e : o.errors) {
    std::fprintf(stderr, "[omnivar] ignoring %s\n", e.c_str());
  }
}

struct HarnessOutcome {
  std::string name;
  std::string scenario;  ///< scenario name; "" = the paper default.
  std::string artifact;  ///< artifact file name ("" = none written).
  int exit_code = 0;
  std::size_t verdicts_ok = 0;
  std::size_t verdicts_total = 0;
  std::size_t cached = 0;
  std::size_t computed = 0;
  double seconds = 0.0;
  bool artifact_written = false;
  std::vector<CellFailure> failures;  ///< quarantined cells.
};

/// Per-harness supervision policy resolved from the CLI/environment.
struct Supervision {
  std::size_t retries = 0;
  std::chrono::milliseconds timeout{0};
};

/// "name" or "name @ scenario" for stderr chrome.
std::string unit_display(const HarnessOutcome& o) {
  return o.scenario.empty() ? o.name : o.name + " @ " + o.scenario;
}

/// Runs one (harness, scenario) unit under a fresh context; writes its
/// artifact (as `artifact`) when an out dir is configured. Under the
/// campaign scheduler (`sched` non-null) the unit's science stdout lands
/// in `capture` for ordered replay and cold cells are routed through the
/// shared pool as unit `unit`.
HarnessOutcome run_one(const HarnessInfo& h, std::size_t jobs,
                       const std::string& out_dir,
                       const std::optional<scenario::ScenarioSpec>& scn,
                       std::size_t ckpt_every = 0,
                       const std::string& resume = {},
                       const Supervision& sup = {},
                       const std::string& artifact = {},
                       std::string* capture = nullptr,
                       CellScheduler* sched = nullptr, std::size_t unit = 0) {
  HarnessOutcome out;
  out.name = h.name;
  out.scenario = scn ? scn->name : "";
  out.artifact = artifact.empty() ? h.name + ".json" : artifact;
  const auto t0 = std::chrono::steady_clock::now();
  // Everything that can throw is inside this block — a bad --out path
  // (RunContext's ensure_dir), a failing harness, or an artifact write
  // error must mark this harness FAILED, not std::terminate the campaign.
  try {
    RunContext ctx(h.name, jobs, out_dir, scn);
    ctx.configure_checkpoints(ckpt_every, resume);
    ctx.configure_supervision(sup.retries, sup.timeout);
    ctx.set_output_capture(capture);
    if (sched != nullptr) ctx.configure_scheduler(sched, unit);
    try {
      out.exit_code = h.run(ctx);
    } catch (const CellQuarantined&) {
      // The cell's failure record and stdout announcement already landed
      // (RunContext::protocol); here we only translate the unwind into the
      // quarantine exit code — the campaign keeps running.
      out.exit_code = kExitQuarantined;
    }
    out.verdicts_total = ctx.verdicts().size();
    for (const auto& v : ctx.verdicts()) {
      if (v.ok) ++out.verdicts_ok;
    }
    out.cached = ctx.cache_hits();
    out.computed = ctx.cache_misses();
    out.failures = ctx.failures();
    if (!out_dir.empty() && out.exit_code == kExitOk) {
      core::atomic_write_file(out_dir + "/" + out.artifact,
                              ctx.artifact_json(h.description), "artifact");
      out.artifact_written = true;
    }
  } catch (const snap::CheckpointStop& e) {
    // The configured stop-after limit tripped right after a checkpoint
    // landed: a deliberate mid-protocol exit, distinguishable from failure
    // so the CI round-trip lane can assert on it before resuming. Under
    // the scheduler, the stop also halts every other unit's cell dispatch
    // — in-flight cells drain, queued ones never start.
    if (sched != nullptr) sched->note_stop();
    std::fprintf(stderr, "[omnivar] %s stopped: %s\n",
                 unit_display(out).c_str(), e.what());
    out.exit_code = kExitCheckpointStop;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[omnivar] %s failed: %s\n",
                 unit_display(out).c_str(), e.what());
    out.exit_code = kExitHarnessFailed;
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

void write_campaign_json(
    const std::string& out_dir, std::size_t jobs, std::size_t cell_jobs,
    const std::vector<std::optional<scenario::ScenarioSpec>>& scns,
    const std::vector<HarnessOutcome>& outcomes) {
  json::JsonWriter w;
  w.begin_object();
  w.key("schema").value("omnivar-campaign-v3");
  w.key("jobs").value(jobs);
  w.key("cell_jobs").value(cell_jobs);
  // v2 compatibility: "scenario" stays the (single) active selection;
  // multi-scenario campaigns list every selection under "scenarios" and
  // tag each outcome.
  w.key("scenario");
  if (scns.size() == 1 && scns.front()) {
    w.begin_object();
    w.key("name").value(scns.front()->name);
    w.key("fingerprint").value(scns.front()->fingerprint());
    w.end_object();
  } else {
    w.null();
  }
  w.key("scenarios").begin_array();
  for (const auto& s : scns) {
    if (!s) continue;  // paper mode carries no scenario entries
    w.begin_object();
    w.key("name").value(s->name);
    w.key("fingerprint").value(s->fingerprint());
    w.end_object();
  }
  w.end_array();
  bool ok = true;
  w.key("harnesses").begin_array();
  for (const auto& o : outcomes) {
    ok &= o.exit_code == 0;
    w.begin_object();
    w.key("name").value(o.name);
    w.key("scenario");
    if (o.scenario.empty()) {
      w.null();
    } else {
      w.value(o.scenario);
    }
    w.key("exit_code").value(static_cast<std::int64_t>(o.exit_code));
    w.key("verdicts_ok").value(o.verdicts_ok);
    w.key("verdicts_total").value(o.verdicts_total);
    w.key("cells_cached").value(o.cached);
    w.key("cells_computed").value(o.computed);
    w.key("seconds").value(o.seconds);
    if (o.artifact_written) {
      w.key("artifact").value(o.artifact);
    } else {
      w.key("artifact").null();
    }
    w.key("failures").begin_array();
    for (const auto& f : o.failures) {
      w.begin_object();
      w.key("label").value(f.label);
      w.key("spec_hash").value(f.hash);
      w.key("taxonomy").value(f.taxonomy);
      w.key("error").value(f.error);
      w.key("attempts").value(f.attempts);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("ok").value(ok);
  w.end_object();
  core::atomic_write_file(out_dir + "/campaign.json", w.str(), "campaign");
}

void report_outcome(const HarnessOutcome& o) {
  const char* status = o.exit_code == kExitOk ? "done"
                       : o.exit_code == kExitQuarantined ? "QUARANTINED"
                                                         : "FAILED";
  std::fprintf(stderr,
               "[omnivar] %s: %s — %zu/%zu shape checks ok, cells: %zu "
               "cached + %zu computed (%.1fs)\n",
               unit_display(o).c_str(), status, o.verdicts_ok,
               o.verdicts_total, o.cached, o.computed, o.seconds);
}

/// Resolves and arms the fault-injection plan (--fault-spec /
/// OMNIVAR_FAULT_SPEC). Returns false on a malformed spec — a usage error:
/// a typo'd plan must never silently run a healthy campaign that CI then
/// treats as a fault-survival proof.
bool resolve_fault_spec(const Options& o) {
  const std::string spec = effective_fault_spec(o.fault_spec);
  try {
    fault::set_active_spec(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[omnivar] %s\n", e.what());
    return false;
  }
  if (!spec.empty()) {
    std::fprintf(stderr, "[omnivar] fault injection armed: %s\n",
                 spec.c_str());
  }
  return true;
}

/// Resolves every effective scenario selector. Paper mode (no selection)
/// yields one disengaged entry so the unit fan-out always has at least one
/// scenario axis. Duplicate selections are a usage error: two units would
/// race to compute identical cell hashes for identical artifacts.
bool resolve_scenario_list(
    const Options& o,
    std::vector<std::optional<scenario::ScenarioSpec>>& out) {
  std::vector<std::string> sels;
  try {
    sels = effective_scenarios(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[omnivar] %s\n", e.what());
    return false;
  }
  if (sels.empty()) {
    out.emplace_back(std::nullopt);
    return true;
  }
  for (const auto& sel : sels) {
    std::optional<scenario::ScenarioSpec> s;
    if (!resolve_scenario(sel, s)) return false;
    for (const auto& prev : out) {
      if (prev && prev->name == s->name &&
          prev->fingerprint() == s->fingerprint()) {
        std::fprintf(stderr,
                     "[omnivar] duplicate scenario '%s' in the --scenario "
                     "list\n",
                     s->name.c_str());
        return false;
      }
    }
    out.push_back(std::move(s));
  }
  return true;
}

/// One (harness, scenario) execution unit of the campaign fan-out, in
/// registry x scenario order.
struct Unit {
  const HarnessInfo* h = nullptr;
  const std::optional<scenario::ScenarioSpec>* scn = nullptr;
  std::string artifact;  ///< per-unit artifact file name.
};

/// Artifact file names stay "<harness>.json" for single-scenario runs
/// (byte-compatible with every prior release); a multi-scenario fan-out
/// suffixes the scenario name ("<harness>.<scenario>.json"), sanitized for
/// file-based scenario selectors whose names may carry path characters.
std::string artifact_name(const HarnessInfo& h,
                          const std::optional<scenario::ScenarioSpec>& scn,
                          bool multi) {
  if (!multi || !scn) return h.name + ".json";
  std::string tag = scn->name;
  for (char& c : tag) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return h.name + "." + tag + ".json";
}

std::vector<Unit> build_units(
    const std::vector<const HarnessInfo*>& selected,
    const std::vector<std::optional<scenario::ScenarioSpec>>& scns) {
  const bool multi = scns.size() > 1;
  std::vector<Unit> units;
  units.reserve(selected.size() * scns.size());
  for (const HarnessInfo* h : selected) {
    for (const auto& s : scns) {
      units.push_back({h, &s, artifact_name(*h, s, multi)});
    }
  }
  return units;
}

/// Runs one unit's harness in enumeration mode; returns its cell plan
/// (empty — and unprioritized — when the harness cannot enumerate).
std::vector<CellPlan> enumerate_unit(const Unit& unit) {
  RunContext ctx(unit.h->name, 1, "", *unit.scn, ContextMode::kEnumerate);
  try {
    (void)unit.h->run(ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "[omnivar] cell enumeration of %s failed (%s); its cells "
                 "run unprioritized\n",
                 unit.h->name.c_str(), e.what());
  }
  return ctx.plan();
}

/// --plan: print every enumerated cell as
/// "harness<TAB>scenario<TAB>label<TAB>hash<TAB>cost" in execution order
/// ("-" = the paper's default scenario pair).
int print_plan(const std::vector<Unit>& units) {
  for (const Unit& unit : units) {
    const std::string scn_name = *unit.scn ? (*unit.scn)->name : "-";
    for (const CellPlan& c : enumerate_unit(unit)) {
      std::printf("%s\t%s\t%s\t%s\t%.0f\n", unit.h->name.c_str(),
                  scn_name.c_str(), c.label.c_str(), c.hash.c_str(), c.cost);
    }
  }
  return kExitOk;
}

/// Cell parallelism is incompatible with an armed fault plan: occurrence
/// counters (`@N`) fire in process-wide arrival order, which only replays
/// deterministically when cells execute one at a time. Forcing the serial
/// loop keeps every --fault-spec campaign bit-reproducible at any
/// requested --cell-jobs.
std::size_t force_serial_when_faults_armed(std::size_t cell_jobs) {
  if (cell_jobs > 1 && fault::active_plan().armed()) {
    std::fprintf(stderr,
                 "[omnivar] fault injection is armed; forcing --cell-jobs 1 "
                 "so @N occurrence counters replay deterministically\n");
    return 1;
  }
  return cell_jobs;
}

/// Aggregates per-harness exit codes into the driver's exit code:
/// a checkpoint stop wins (the campaign stopped deliberately), else
/// quarantine beats generic failure, else any failure is 1.
int aggregate_rc(const std::vector<HarnessOutcome>& outcomes) {
  bool any_failed = false;
  bool any_quarantined = false;
  for (const auto& o : outcomes) {
    if (o.exit_code == kExitCheckpointStop) return kExitCheckpointStop;
    if (o.exit_code == kExitQuarantined) {
      any_quarantined = true;
    } else if (o.exit_code != kExitOk) {
      any_failed = true;
    }
  }
  if (any_quarantined) return kExitQuarantined;
  return any_failed ? kExitHarnessFailed : kExitOk;
}

}  // namespace

int run_standalone(int argc, char** argv) {
  const Options o = parse_options(argc, argv);
  report_option_errors(o);
  if (o.help) {
    print_usage(argv[0], /*campaign=*/false);
    return 0;
  }
  if (o.list_scenarios) {
    print_scenarios();
    return 0;
  }
  if (o.isa_report) {
    print_isa_report();
    return 0;
  }
  if (o.version) {
    print_version();
    return 0;
  }
  std::vector<std::optional<scenario::ScenarioSpec>> scns;
  if (!resolve_scenario_list(o, scns)) return kExitUsage;
  if (!resolve_fault_spec(o)) return kExitUsage;
  std::size_t ckpt_every = 0;
  std::string resume;
  resolve_checkpoints(o, ckpt_every, resume);
  const Supervision sup{
      effective_retry_cells(o.retry_cells),
      std::chrono::milliseconds(effective_cell_timeout_ms(o.cell_timeout_ms))};
  const auto& all = Registry::instance().all();
  if (all.size() != 1) {
    std::fprintf(stderr,
                 "[omnivar] standalone binary expects exactly one "
                 "registered harness, found %zu\n",
                 all.size());
    return kExitUsage;
  }
  const HarnessInfo& h = all.front();
  if (o.list) {
    std::printf("%-16s %s\n", h.name.c_str(), h.description.c_str());
    return 0;
  }
  if (!o.only.empty()) {
    std::fprintf(stderr,
                 "[omnivar] --only has no effect on a standalone binary "
                 "(it always runs '%s'); use the omnivar driver to select "
                 "harnesses\n",
                 h.name.c_str());
  }
  const std::vector<const HarnessInfo*> selected{&h};
  const std::vector<Unit> units = build_units(selected, scns);
  if (o.plan) return print_plan(units);
  if (effective_cell_jobs(o.cell_jobs) > 1) {
    std::fprintf(stderr,
                 "[omnivar] --cell-jobs applies to the omnivar campaign "
                 "driver; a standalone binary runs its cells serially\n");
  }
  std::vector<HarnessOutcome> outcomes;
  for (const Unit& unit : units) {
    outcomes.push_back(run_one(*unit.h, effective_jobs(o.jobs), o.out_dir,
                               *unit.scn, ckpt_every, resume, sup,
                               unit.artifact));
    if (outcomes.back().exit_code == kExitCheckpointStop) break;
  }
  const int rc = aggregate_rc(outcomes);
  if (!o.out_dir.empty()) {
    for (const auto& out : outcomes) report_outcome(out);
    try {
      write_campaign_json(o.out_dir, effective_jobs(o.jobs), 1, scns,
                          outcomes);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[omnivar] cannot write campaign.json: %s\n",
                   e.what());
      return rc != kExitOk ? rc : kExitHarnessFailed;
    }
  }
  return rc;
}

int run_campaign(int argc, char** argv) {
  const Options o = parse_options(argc, argv);
  report_option_errors(o);
  if (o.help) {
    print_usage(argv[0], /*campaign=*/true);
    return 0;
  }
  const auto& reg = Registry::instance();
  if (o.list) {
    for (const auto& h : reg.all()) {
      std::printf("%-16s %s\n", h.name.c_str(), h.description.c_str());
    }
    return 0;
  }
  if (o.list_scenarios) {
    print_scenarios();
    return 0;
  }
  if (o.isa_report) {
    print_isa_report();
    return 0;
  }
  if (o.version) {
    print_version();
    return 0;
  }
  if (o.bench_campaign) return run_campaign_bench(o);
  std::vector<std::optional<scenario::ScenarioSpec>> scns;
  if (!resolve_scenario_list(o, scns)) return kExitUsage;
  if (!resolve_fault_spec(o)) return kExitUsage;
  std::size_t ckpt_every = 0;
  std::string resume;
  resolve_checkpoints(o, ckpt_every, resume);
  const Supervision sup{
      effective_retry_cells(o.retry_cells),
      std::chrono::milliseconds(effective_cell_timeout_ms(o.cell_timeout_ms))};
  const auto selected = reg.match(o.only);
  if (selected.empty()) {
    std::fprintf(stderr, "[omnivar] no harness matches");
    for (const auto& g : o.only) std::fprintf(stderr, " '%s'", g.c_str());
    std::fprintf(stderr, "; try --list\n");
    return kExitUsage;
  }

  const std::vector<Unit> units = build_units(selected, scns);
  if (o.plan) return print_plan(units);

  const std::size_t jobs = effective_jobs(o.jobs);
  const std::size_t cell_jobs =
      force_serial_when_faults_armed(effective_cell_jobs(o.cell_jobs));
  std::vector<HarnessOutcome> outcomes;
  report_isa();
  for (const auto& scn : scns) {
    if (scn) {
      std::fprintf(stderr, "[omnivar] scenario %s (%s, %s)\n",
                   scn->name.c_str(), scn->display.c_str(),
                   scn->fingerprint().c_str());
    }
  }

  if (cell_jobs <= 1 || units.size() <= 1) {
    // Serial loop: units execute one after another on this thread, stdout
    // streaming directly — exactly the historical campaign execution.
    for (const Unit& unit : units) {
      std::fprintf(stderr, "[omnivar] running %s (%zu of %zu)\n",
                   (*unit.scn ? unit.h->name + " @ " + (*unit.scn)->name
                              : unit.h->name)
                       .c_str(),
                   outcomes.size() + 1, units.size());
      outcomes.push_back(run_one(*unit.h, jobs, o.out_dir, *unit.scn,
                                 ckpt_every, resume, sup, unit.artifact));
      report_outcome(outcomes.back());
      // A deliberate checkpoint stop ends the campaign immediately: later
      // harnesses would burn the budget the stop was meant to save. A
      // quarantined harness does NOT stop the campaign — that is the whole
      // point of quarantine.
      if (outcomes.back().exit_code == kExitCheckpointStop) break;
    }
  } else {
    // Campaign cell scheduler: enumerate every unit's cells (cost hints),
    // then run each unit on its own thread with its science stdout
    // captured, cold cells draining through one shared pool longest-
    // expected-unit-first. Buffers are replayed in unit (registry x
    // scenario) order as units finish, so stdout is byte-identical to the
    // serial loop above.
    std::vector<double> unit_costs(units.size(), 0.0);
    std::size_t n_cells = 0;
    for (std::size_t u = 0; u < units.size(); ++u) {
      const std::vector<CellPlan> plan = enumerate_unit(units[u]);
      for (const CellPlan& c : plan) unit_costs[u] += c.cost;
      n_cells += plan.size();
    }
    CellScheduler sched(cell_jobs, std::move(unit_costs));
    std::fprintf(stderr,
                 "[omnivar] cell scheduler: %zu cells across %zu units, "
                 "%zu cell workers\n",
                 n_cells, units.size(), sched.workers());
    std::vector<std::string> captures(units.size());
    std::vector<HarnessOutcome> slots(units.size());
    std::vector<std::thread> threads;
    threads.reserve(units.size());
    for (std::size_t u = 0; u < units.size(); ++u) {
      threads.emplace_back([&, u] {
        slots[u] = run_one(*units[u].h, jobs, o.out_dir, *units[u].scn,
                           ckpt_every, resume, sup, units[u].artifact,
                           &captures[u], &sched, u);
      });
    }
    for (std::size_t u = 0; u < units.size(); ++u) {
      threads[u].join();
      // omvlint: allow(atomic-writes) ordered stdout replay of captured cell output, not a file commit
      std::fwrite(captures[u].data(), 1, captures[u].size(), stdout);
      std::fflush(stdout);
      report_outcome(slots[u]);
      outcomes.push_back(std::move(slots[u]));
    }
  }
  int rc = aggregate_rc(outcomes);
  if (!o.out_dir.empty()) {
    try {
      write_campaign_json(o.out_dir, jobs, cell_jobs, scns, outcomes);
      std::fprintf(stderr, "[omnivar] campaign summary: %s/campaign.json\n",
                   o.out_dir.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[omnivar] cannot write campaign.json: %s\n",
                   e.what());
      rc = rc != kExitOk ? rc : kExitHarnessFailed;
    }
  }
  return rc;
}

}  // namespace omv::cli
