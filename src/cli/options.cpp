#include "cli/options.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/parallel_runner.hpp"

namespace omv::cli {

bool parse_uint(const char* text, std::size_t& out) {
  if (text == nullptr || *text == '\0') return false;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_job_count(const char* text, std::size_t& out) {
  std::size_t v = 0;
  if (!parse_uint(text, v)) return false;
  out = resolve_jobs(v);
  return true;
}

namespace {

/// Matches `--flag=value` or `--flag value`; on a match, `value` points at
/// the value and `i` is advanced past a separate-argument value.
const char* flag_value(const char* flag, int argc, char** argv, int& i,
                       std::vector<std::string>& errors) {
  const char* arg = argv[i];
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] != '\0') return nullptr;  // e.g. --outfoo
  if (i + 1 >= argc) {
    errors.push_back(std::string(flag) + " requires a value");
    return nullptr;
  }
  return argv[++i];
}

}  // namespace

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      o.list = true;
      continue;
    }
    if (std::strcmp(arg, "--scenarios") == 0) {
      o.list_scenarios = true;
      continue;
    }
    if (std::strcmp(arg, "--isa-report") == 0) {
      o.isa_report = true;
      continue;
    }
    if (std::strcmp(arg, "--version") == 0) {
      o.version = true;
      continue;
    }
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      o.help = true;
      continue;
    }
    if (std::strcmp(arg, "--plan") == 0) {
      o.plan = true;
      continue;
    }
    if (std::strcmp(arg, "--bench-campaign") == 0) {
      o.bench_campaign = true;
      continue;
    }
    if (const char* v = flag_value("--only", argc, argv, i, o.errors)) {
      o.only.emplace_back(v);
      continue;
    }
    if (const char* v = flag_value("--jobs", argc, argv, i, o.errors)) {
      std::size_t n = 0;
      if (parse_job_count(v, n)) {
        o.jobs = n;
      } else {
        o.errors.push_back("malformed --jobs value '" + std::string(v) +
                           "' (expected a non-negative integer)");
      }
      continue;
    }
    if (const char* v = flag_value("--cell-jobs", argc, argv, i, o.errors)) {
      std::size_t n = 0;
      if (parse_job_count(v, n)) {
        o.cell_jobs = n;
      } else {
        o.errors.push_back("malformed --cell-jobs value '" + std::string(v) +
                           "' (expected a non-negative integer)");
      }
      continue;
    }
    if (const char* v =
            flag_value("--scenario-set", argc, argv, i, o.errors)) {
      o.scenario_set = v;
      continue;
    }
    if (const char* v = flag_value("--scenario", argc, argv, i, o.errors)) {
      o.scenarios.emplace_back(v);
      continue;
    }
    if (const char* v = flag_value("--out", argc, argv, i, o.errors)) {
      o.out_dir = v;
      continue;
    }
    if (const char* v =
            flag_value("--checkpoint-every", argc, argv, i, o.errors)) {
      std::size_t n = 0;
      if (parse_uint(v, n)) {
        o.checkpoint_every = n;
      } else {
        o.errors.push_back("malformed --checkpoint-every value '" +
                           std::string(v) +
                           "' (expected a non-negative integer)");
      }
      continue;
    }
    if (const char* v = flag_value("--resume", argc, argv, i, o.errors)) {
      o.resume = v;
      continue;
    }
    if (const char* v = flag_value("--retry-cells", argc, argv, i, o.errors)) {
      std::size_t n = 0;
      if (parse_uint(v, n)) {
        o.retry_cells = n;
      } else {
        o.errors.push_back("malformed --retry-cells value '" +
                           std::string(v) +
                           "' (expected a non-negative integer)");
      }
      continue;
    }
    if (const char* v =
            flag_value("--cell-timeout", argc, argv, i, o.errors)) {
      std::size_t n = 0;
      if (parse_uint(v, n)) {
        o.cell_timeout_ms = n;
      } else {
        o.errors.push_back("malformed --cell-timeout value '" +
                           std::string(v) +
                           "' (expected milliseconds as a non-negative "
                           "integer)");
      }
      continue;
    }
    if (const char* v = flag_value("--fault-spec", argc, argv, i, o.errors)) {
      o.fault_spec = v;
      continue;
    }
    // flag_value may already have recorded a missing-value error for this
    // argument; only flag it as unknown when it did not consume it.
    if (std::strcmp(arg, "--only") != 0 && std::strcmp(arg, "--jobs") != 0 &&
        std::strcmp(arg, "--cell-jobs") != 0 &&
        std::strcmp(arg, "--scenario") != 0 &&
        std::strcmp(arg, "--scenario-set") != 0 &&
        std::strcmp(arg, "--out") != 0 &&
        std::strcmp(arg, "--checkpoint-every") != 0 &&
        std::strcmp(arg, "--resume") != 0 &&
        std::strcmp(arg, "--retry-cells") != 0 &&
        std::strcmp(arg, "--cell-timeout") != 0 &&
        std::strcmp(arg, "--fault-spec") != 0) {
      o.errors.push_back("unknown argument '" + std::string(arg) + "'");
    }
  }
  return o;
}

std::size_t effective_jobs(std::size_t cli_jobs) {
  if (cli_jobs != 0) return cli_jobs;
  if (const char* j = std::getenv("OMNIVAR_JOBS")) {
    std::size_t n = 0;
    if (parse_job_count(j, n)) return n;
    static bool warned = [&] {
      std::fprintf(stderr,
                   "omnivar: ignoring malformed OMNIVAR_JOBS='%s' "
                   "(expected a non-negative integer); running serial\n",
                   j);
      return true;
    }();
    (void)warned;
  }
  return 1;
}

std::string effective_scenario(const std::string& cli_scenario) {
  if (!cli_scenario.empty()) return cli_scenario;
  if (const char* s = std::getenv("OMNIVAR_SCENARIO")) return s;
  return {};
}

std::vector<std::string> effective_scenarios(const Options& o) {
  std::vector<std::string> out = o.scenarios;
  if (!o.scenario_set.empty()) {
    std::ifstream in(o.scenario_set);
    if (!in) {
      throw std::runtime_error("cannot read --scenario-set file '" +
                               o.scenario_set + "'");
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t b = line.find_first_not_of(" \t\r");
      if (b == std::string::npos) continue;
      const std::size_t e = line.find_last_not_of(" \t\r");
      line = line.substr(b, e - b + 1);
      if (line.empty() || line[0] == '#') continue;
      out.push_back(line);
    }
  }
  if (out.empty()) {
    if (const char* s = std::getenv("OMNIVAR_SCENARIO"); s && *s != '\0') {
      out.emplace_back(s);
    }
  }
  return out;
}

std::size_t effective_cell_jobs(std::size_t cli_cell_jobs) {
  if (cli_cell_jobs != 0) return cli_cell_jobs;
  if (const char* j = std::getenv("OMNIVAR_CELL_JOBS")) {
    std::size_t n = 0;
    if (parse_job_count(j, n)) return n;
    static bool warned = [&] {
      std::fprintf(stderr,
                   "omnivar: ignoring malformed OMNIVAR_CELL_JOBS='%s' "
                   "(expected a non-negative integer); running cells "
                   "serially\n",
                   j);
      return true;
    }();
    (void)warned;
  }
  return 1;
}

std::size_t effective_checkpoint_every(std::size_t cli_every) {
  if (cli_every != 0) return cli_every;
  if (const char* e = std::getenv("OMNIVAR_CHECKPOINT_EVERY")) {
    std::size_t n = 0;
    if (parse_uint(e, n)) return n;
    static bool warned = [&] {
      std::fprintf(stderr,
                   "omnivar: ignoring malformed OMNIVAR_CHECKPOINT_EVERY="
                   "'%s' (expected a non-negative integer)\n",
                   e);
      return true;
    }();
    (void)warned;
  }
  return 0;
}

std::size_t effective_retry_cells(std::size_t cli_retries) {
  if (cli_retries != 0) return cli_retries;
  if (const char* e = std::getenv("OMNIVAR_RETRY_CELLS")) {
    std::size_t n = 0;
    if (parse_uint(e, n)) return n;
    static bool warned = [&] {
      std::fprintf(stderr,
                   "omnivar: ignoring malformed OMNIVAR_RETRY_CELLS='%s' "
                   "(expected a non-negative integer)\n",
                   e);
      return true;
    }();
    (void)warned;
  }
  return 0;
}

std::size_t effective_cell_timeout_ms(std::size_t cli_ms) {
  if (cli_ms != 0) return cli_ms;
  if (const char* e = std::getenv("OMNIVAR_CELL_TIMEOUT_MS")) {
    std::size_t n = 0;
    if (parse_uint(e, n)) return n;
    static bool warned = [&] {
      std::fprintf(stderr,
                   "omnivar: ignoring malformed OMNIVAR_CELL_TIMEOUT_MS="
                   "'%s' (expected milliseconds as a non-negative "
                   "integer)\n",
                   e);
      return true;
    }();
    (void)warned;
  }
  return 0;
}

std::string effective_fault_spec(const std::string& cli_spec) {
  if (!cli_spec.empty()) return cli_spec;
  if (const char* s = std::getenv("OMNIVAR_FAULT_SPEC")) return s;
  return {};
}

}  // namespace omv::cli
