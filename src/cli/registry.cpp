#include "cli/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace omv::cli {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer match with single-star backtracking.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t match = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(HarnessInfo info) {
  for (const auto& h : harnesses_) {
    if (h.name == info.name) {
      throw std::invalid_argument("duplicate harness registration '" +
                                  info.name + "'");
    }
  }
  harnesses_.push_back(std::move(info));
  sorted_ = false;
}

const std::vector<HarnessInfo>& Registry::all() const {
  if (!sorted_) {
    std::sort(harnesses_.begin(), harnesses_.end(),
              [](const HarnessInfo& a, const HarnessInfo& b) {
                return a.name < b.name;
              });
    sorted_ = true;
  }
  return harnesses_;
}

const HarnessInfo* Registry::find(std::string_view name) const {
  for (const auto& h : all()) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::vector<const HarnessInfo*> Registry::match(
    const std::vector<std::string>& globs) const {
  std::vector<const HarnessInfo*> out;
  for (const auto& h : all()) {
    if (globs.empty()) {
      out.push_back(&h);
      continue;
    }
    for (const auto& g : globs) {
      if (glob_match(g, h.name)) {
        out.push_back(&h);
        break;
      }
    }
  }
  return out;
}

Registration::Registration(std::string name, std::string description,
                           std::function<int(RunContext&)> run) {
  Registry::instance().add(
      {std::move(name), std::move(description), std::move(run)});
}

}  // namespace omv::cli
