// omnivar — the unified campaign driver.
//
// Links every bench harness's registration and runs the selected subset as
// one campaign:
//
//   omnivar --list                          # name every harness
//   omnivar --only 'fig*' --jobs 0 --out campaign/
//   omnivar --only fig3 --out campaign/     # re-run: served from cache
//
// Harness reports go to stdout (byte-identical to the standalone
// binaries); driver progress and cache statistics go to stderr; JSON
// artifacts and the spec-hash result cache land under --out.

#include "cli/campaign.hpp"

int main(int argc, char** argv) {
  return omv::cli::run_campaign(argc, argv);
}
