#include "cli/hotpath_report.hpp"

#include <stdexcept>
#include <thread>

#include "core/atomic_file.hpp"
#include "core/json_writer.hpp"

namespace omv::cli {
namespace {

const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_flavor() {
#if defined(NDEBUG)
  return "optimized";
#else
  return "assertions";
#endif
}

}  // namespace

std::string hotpath_report_json(const HotpathReport& report) {
  if (report.kernels.empty()) {
    throw std::invalid_argument(
        "hotpath_report_json: refusing to render an empty report");
  }
  json::JsonWriter w;
  w.begin_object();
  w.key("schema").value("omnivar-bench-hotpath-v2");
  w.key("quick").value(report.quick);
  w.key("machine").begin_object();
  w.key("sim_machine").value(report.sim_machine);
  w.key("hardware_concurrency")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("compiler").value(compiler_id());
  w.key("build").value(build_flavor());
  // Batched-kernel dispatch state: which ISA build answered the batched
  // variants, and the density-adaptive scan/index cutovers in effect —
  // without these a trajectory point from another host/build would not be
  // comparable.
  w.key("isa").value(report.isa);
  w.key("isa_override").value(report.isa_overridden);
  w.key("adaptive_cutover").begin_object();
  w.key("noise_scan_window").value(report.noise_scan_cutover);
  w.key("freq_scan_episodes").value(report.freq_scan_cutover);
  w.end_object();
  w.key("baseline_definition")
      .value("per kernel (baseline_kind): brute-force reference scan, "
             "per-call indexed queries, or the per-thread team loop");
  w.end_object();
  bool any_regression = false;
  w.key("kernels").begin_array();
  for (const auto& k : report.kernels) {
    w.begin_object();
    w.key("kernel").value(k.kernel);
    w.key("density").value(k.density);
    w.key("stream_events").value(k.stream_events);
    w.key("optimized_ns_per_op").value(k.optimized_ns);
    if (k.baseline_ns > 0.0) {
      w.key("baseline_ns_per_op").value(k.baseline_ns);
      w.key("baseline_kind").value(k.baseline_kind);
      w.key("speedup").value(k.optimized_ns > 0.0
                                 ? k.baseline_ns / k.optimized_ns
                                 : 0.0);
      w.key("regression").value(k.regression());
      any_regression |= k.regression();
    }
    w.end_object();
  }
  w.end_array();
  w.key("any_regression").value(any_regression);
  w.end_object();
  return w.str();
}

bool write_hotpath_report(const HotpathReport& report,
                          const std::string& path) {
  // Atomic commit: a crashed or ENOSPC'd writer must never leave a torn
  // BENCH_hotpath.json for the CI trajectory checks to choke on.
  try {
    core::atomic_write_file(path, hotpath_report_json(report) + "\n",
                            "hotpath");
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace omv::cli
