// main() for a standalone harness binary: each bench/bench_*.cpp is
// compiled together with this file, so the binary runs exactly the one
// harness the translation unit registered (same flags, artifact and cache
// behavior as running it through the omnivar driver).

#include "cli/campaign.hpp"

int main(int argc, char** argv) {
  return omv::cli::run_standalone(argc, argv);
}
