#pragma once
// Harness registry for the omnivar campaign driver.
//
// Every bench/bench_*.cpp defines one harness: a run function plus a static
// Registration object that files it here under a short name ("fig3",
// "table2", ...). The same translation unit serves two link targets:
//   * its standalone binary (bench_fig3_...) — src/cli/standalone_main.cpp
//     runs the single registered harness;
//   * the omnivar driver — src/cli/omnivar_main.cpp links all harnesses and
//     runs the selected subset as one resumable campaign.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace omv::cli {

class RunContext;

/// One registered harness. `run` prints the harness's report to stdout,
/// records series/verdicts/cells into the context, and returns a process
/// exit code (0 = ran to completion; shape verdicts are recorded, not
/// exit codes).
struct HarnessInfo {
  std::string name;
  std::string description;
  std::function<int(RunContext&)> run;
};

/// Glob match supporting '*' (any substring) and '?' (any one character).
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

/// Process-wide harness registry (populated by static Registration objects
/// before main).
class Registry {
 public:
  static Registry& instance();

  /// Registers a harness; throws std::invalid_argument on a duplicate name.
  void add(HarnessInfo info);

  /// All harnesses, sorted by name (deterministic listing regardless of
  /// link order).
  [[nodiscard]] const std::vector<HarnessInfo>& all() const;

  /// Harness by exact name; nullptr when absent.
  [[nodiscard]] const HarnessInfo* find(std::string_view name) const;

  /// Harnesses matching any of `globs` (all harnesses when empty), sorted
  /// by name.
  [[nodiscard]] std::vector<const HarnessInfo*> match(
      const std::vector<std::string>& globs) const;

 private:
  mutable std::vector<HarnessInfo> harnesses_;
  mutable bool sorted_ = false;
};

/// Registers a harness at static-initialization time:
///   static const cli::Registration reg{"fig3", "Figure 3 — ...", run_fig3};
struct Registration {
  Registration(std::string name, std::string description,
               std::function<int(RunContext&)> run);
};

}  // namespace omv::cli
