#include "scenario/registry.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace omv::scenario {

namespace {

/// The paper's Dardel node. Geometry and calibration are the legacy
/// factories' values — sim comes straight from SimConfig::dardel(), and
/// the geometry numbers mirror topo::Machine::dardel() (pinned equivalent
/// by tests/test_scenario.cpp).
ScenarioSpec dardel_preset() {
  ScenarioSpec s;
  s.name = "dardel";
  s.display = "Dardel";
  s.description =
      "paper platform: 2x AMD EPYC Zen2 64-core SMT-2, quad-NUMA per "
      "socket (Cray, PDC/KTH)";
  s.machine = {"dardel", /*sockets=*/2, /*numa_per_socket=*/4,
               /*cores_per_numa=*/16, /*smt=*/2, /*base_ghz=*/2.25,
               /*max_ghz=*/3.4, /*groups=*/{}};
  s.sim = sim::SimConfig::dardel();
  // Dardel's frequency is nearly flat even in active sessions; its
  // session profile is its baseline profile.
  s.freq_session = s.sim.freq;
  return s;
}

/// The paper's Vera node. Its active-DVFS session profile is the Figs. 6/7
/// vera_dippy() calibration.
ScenarioSpec vera_preset() {
  ScenarioSpec s;
  s.name = "vera";
  s.display = "Vera";
  s.description =
      "paper platform: 2x Intel Xeon Gold 6130 16-core, no SMT, one NUMA "
      "domain per socket (C3SE Chalmers)";
  s.machine = {"vera", /*sockets=*/2, /*numa_per_socket=*/1,
               /*cores_per_numa=*/16, /*smt=*/1, /*base_ghz=*/2.1,
               /*max_ghz=*/3.7, /*groups=*/{}};
  s.sim = sim::SimConfig::vera();
  s.freq_session = sim::FreqConfig::vera_dippy();
  return s;
}

/// The examples/custom_platform.cpp machine, promoted to a preset: one
/// socket, four NUMA domains, SMT-2 — a desktop-EPYC-like box with
/// Dardel's noise calibration and a narrower memory system.
ScenarioSpec epyc_like_preset() {
  ScenarioSpec s;
  s.name = "epyc-like";
  s.display = "EpycLike";
  s.description =
      "1x 48-core quad-NUMA SMT-2 (the custom_platform example machine): "
      "NUMA-span effects without a second socket";
  s.machine = {"epyc-like", /*sockets=*/1, /*numa_per_socket=*/4,
               /*cores_per_numa=*/12, /*smt=*/2, /*base_ghz=*/2.4,
               /*max_ghz=*/3.6, /*groups=*/{}};
  s.sim = sim::SimConfig::dardel();
  s.sim.mem.domain_gbps = 40.0;
  // Mild dip pressure in active sessions: a consumer part under a
  // shared-desktop power budget, with NUMA-spanning workloads stressing
  // the single package's uncore budget hardest.
  s.freq_session = s.sim.freq;
  s.freq_session.episode_rate = 0.05;
  s.freq_session.depth_lo = 0.85;
  s.freq_session.depth_hi = 0.95;
  s.freq_session.cross_numa_rate_mult = 6.0;
  return s;
}

/// A noisy cloud node: small, oversold, heavily preempted. Exercises the
/// daemon-placement and degradation machinery far beyond the paper's
/// production-cluster profiles.
ScenarioSpec noisy_cloud_preset() {
  ScenarioSpec s;
  s.name = "noisy-cloud";
  s.display = "NoisyCloud";
  s.description =
      "2x 8-core SMT-2 cloud node with heavy preemption: 16x Dardel's "
      "daemon pressure, frequent degraded runs, busy IRQ landing zone";
  s.machine = {"noisy-cloud", /*sockets=*/2, /*numa_per_socket=*/1,
               /*cores_per_numa=*/8, /*smt=*/2, /*base_ghz=*/2.0,
               /*max_ghz=*/3.0, /*groups=*/{}};
  s.sim = sim::SimConfig::vera();
  s.sim.noise.daemon_rate = 480.0;       // neighbors, agents, cron storms
  s.sim.noise.daemon_mean = 250e-6;
  s.sim.noise.kworker_rate_per_cpu = 1.2;
  s.sim.noise.irq_rate = 0.6;
  s.sim.noise.irq_cpus = 2;
  s.sim.noise.degrade_prob = 0.30;       // nearly one run in three
  s.sim.noise.degrade_rate_mult = 8.0;
  s.sim.noise.daemon_miss_factor = 0.6;  // cache-hot wakeups dominate
  s.sim.costs.migration_cost = 90e-6;    // cold caches after every steal
  s.sim.freq.episode_rate = 0.05;
  s.sim.freq.depth_lo = 0.70;
  s.sim.freq.depth_hi = 0.90;
  s.sim.freq.run_cap_prob = 0.15;        // power-capped neighbors
  s.sim.freq.run_cap_depth = 0.85;
  s.freq_session = s.sim.freq;
  s.freq_session.episode_rate = 0.25;
  return s;
}

/// A quiet, tuned HPC node: ticks only plus a whisper of daemon activity,
/// flat frequency. The near-ideal baseline end of the catalog.
ScenarioSpec quiet_hpc_preset() {
  ScenarioSpec s;
  s.name = "quiet-hpc";
  s.display = "QuietHPC";
  s.description =
      "2x 2-NUMA 24-core tuned HPC node: minimal daemons, no degraded "
      "runs, flat frequency — the noise floor of the catalog";
  s.machine = {"quiet-hpc", /*sockets=*/2, /*numa_per_socket=*/2,
               /*cores_per_numa=*/24, /*smt=*/1, /*base_ghz=*/2.6,
               /*max_ghz=*/3.8, /*groups=*/{}};
  s.sim = sim::SimConfig::dardel();
  s.sim.noise.daemon_rate = 2.0;
  s.sim.noise.kworker_rate_per_cpu = 0.01;
  s.sim.noise.irq_rate = 0.01;
  s.sim.noise.degrade_prob = 0.0;
  s.sim.freq = sim::FreqConfig::flat();
  s.sim.mem.domain_gbps = 55.0;
  s.freq_session = s.sim.freq;
  return s;
}

/// A big.LITTLE-style client part: four SMT-2 P-cores and four SMT-1
/// E-cores on one socket, each cluster its own NUMA-modelled L3 domain,
/// with per-class frequency ranges and E-cores at ~0.55x compute rate.
/// The catalog's first asymmetric (node-group) preset: exercises mixed-SMT
/// placement, per-class calibration and heterogeneous daemon absorption.
ScenarioSpec biglittle_preset() {
  ScenarioSpec s;
  s.name = "biglittle";
  s.display = "BigLittle";
  s.description =
      "1-socket 4P(SMT-2)+4E(SMT-1) hybrid client part: mixed SMT, "
      "per-class clocks and compute rates, clusters as separate domains";
  s.machine.label = "biglittle";
  {
    NodeGroupSpec p;
    p.name = "P";
    p.sockets = 1;
    p.numa = 1;
    p.cores = 4;
    p.smt = 2;
    p.base_ghz = 2.5;
    p.max_ghz = 3.8;
    p.work_rate = 1.0;
    NodeGroupSpec e;
    e.name = "E";
    e.socket = 0;  // same die as the P cluster
    e.numa = 1;
    e.cores = 4;
    e.smt = 1;
    e.base_ghz = 1.8;
    e.max_ghz = 2.6;
    e.work_rate = 0.55;
    s.machine.groups = {p, e};
  }
  s.sim = sim::SimConfig::vera();
  s.sim.class_work_rate = s.machine.class_work_rates();
  // Client noise profile: few CPUs, visible background services.
  s.sim.noise.daemon_rate = 40.0;
  s.sim.noise.kworker_rate_per_cpu = 0.15;
  s.sim.noise.irq_cpus = 2;
  s.sim.mem.domain_gbps = 30.0;
  // Hybrid parts shuffle power budget between clusters constantly.
  s.sim.freq.episode_rate = 0.08;
  s.sim.freq.depth_lo = 0.75;
  s.sim.freq.depth_hi = 0.92;
  s.sim.freq.cross_numa_rate_mult = 4.0;
  s.freq_session = s.sim.freq;
  s.freq_session.episode_rate = 0.30;
  return s;
}

/// Uneven NUMA domains: one 12-core domain plus one 4-core domain on the
/// same socket (a cut-down / partially-disabled part). Same core class
/// everywhere — the asymmetry is purely the domain geometry, so every
/// "cores per NUMA" average assumption is off by 50% in one direction.
ScenarioSpec lopsided_numa_preset() {
  ScenarioSpec s;
  s.name = "lopsided-numa";
  s.display = "LopsidedNuma";
  s.description =
      "1-socket 12c+4c uneven NUMA domains (SMT-2, one core class): "
      "breaks every uniform cores-per-domain assumption";
  s.machine.label = "lopsided-numa";
  {
    NodeGroupSpec wide;
    wide.name = "wide";
    wide.sockets = 1;
    wide.numa = 1;
    wide.cores = 12;
    wide.smt = 2;
    wide.base_ghz = 2.25;
    wide.max_ghz = 3.4;
    wide.work_rate = 1.0;
    NodeGroupSpec narrow = wide;
    narrow.name = "narrow";
    narrow.socket = 0;  // second, smaller domain on the same socket
    narrow.cores = 4;
    s.machine.groups = {wide, narrow};
  }
  s.sim = sim::SimConfig::dardel();
  s.sim.class_work_rate = s.machine.class_work_rates();
  s.sim.mem.domain_gbps = 35.0;
  // Cross-domain traffic on the shared uncore dips harder than Dardel's.
  s.sim.freq.episode_rate = 0.03;
  s.sim.freq.depth_lo = 0.85;
  s.sim.freq.depth_hi = 0.95;
  s.sim.freq.cross_numa_rate_mult = 5.0;
  s.freq_session = s.sim.freq;
  s.freq_session.episode_rate = 0.12;
  return s;
}

/// A DVFS-unstable machine: Vera's geometry with an order of magnitude
/// more dip pressure and deep dips — the high-dip regime the paper's
/// Figs. 6/7 sessions only brushed.
ScenarioSpec dvfs_dippy_preset() {
  ScenarioSpec s;
  s.name = "dvfs-dippy";
  s.display = "DvfsDippy";
  s.description =
      "Vera-like 2x 16-core with deep, frequent frequency dips and a "
      "common run-scoped cap: variability dominated by DVFS, not noise";
  s.machine = {"dvfs-dippy", /*sockets=*/2, /*numa_per_socket=*/1,
               /*cores_per_numa=*/16, /*smt=*/1, /*base_ghz=*/2.1,
               /*max_ghz=*/3.7, /*groups=*/{}};
  s.sim = sim::SimConfig::vera();
  s.sim.freq.episode_rate = 0.30;
  s.sim.freq.episode_mean = 0.8;
  s.sim.freq.depth_lo = 0.55;
  s.sim.freq.depth_hi = 0.85;
  s.sim.freq.run_cap_prob = 0.25;
  s.sim.freq.run_cap_depth = 0.80;
  s.sim.freq.cross_numa_rate_mult = 6.0;
  s.freq_session = s.sim.freq;
  s.freq_session.episode_rate = 0.60;
  return s;
}

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
  scenarios_.push_back(dardel_preset());
  scenarios_.push_back(vera_preset());
  scenarios_.push_back(epyc_like_preset());
  scenarios_.push_back(noisy_cloud_preset());
  scenarios_.push_back(quiet_hpc_preset());
  scenarios_.push_back(dvfs_dippy_preset());
  scenarios_.push_back(biglittle_preset());
  scenarios_.push_back(lopsided_numa_preset());
  std::sort(scenarios_.begin(), scenarios_.end(),
            [](const ScenarioSpec& a, const ScenarioSpec& b) {
              return a.name < b.name;
            });
}

const ScenarioRegistry& ScenarioRegistry::instance() {
  static const ScenarioRegistry registry;
  return registry;
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const
    noexcept {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& name) const {
  const ScenarioSpec* s = find(name);
  if (s == nullptr) {
    throw std::out_of_range("unknown scenario '" + name +
                            "' (catalog: " + names() + ")");
  }
  return *s;
}

std::string ScenarioRegistry::names() const {
  std::string out;
  for (const auto& s : scenarios_) {
    if (!out.empty()) out += ", ";
    out += s.name;
  }
  return out;
}

ScenarioSpec load_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("cannot open scenario file '" + path + "'");
  }
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad()) {
    throw std::runtime_error("read failed for scenario file '" + path +
                             "'");
  }
  return parse_text(os.str(), path);
}

ScenarioSpec resolve(const std::string& name_or_path) {
  if (const ScenarioSpec* s =
          ScenarioRegistry::instance().find(name_or_path)) {
    return *s;
  }
  if (name_or_path.find('/') != std::string::npos ||
      name_or_path.find('.') != std::string::npos) {
    return load_file(name_or_path);
  }
  throw std::runtime_error(
      "unknown scenario '" + name_or_path + "' (catalog: " +
      ScenarioRegistry::instance().names() +
      "; or pass a scenario-file path containing '/' or '.')");
}

}  // namespace omv::scenario
