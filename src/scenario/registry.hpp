#pragma once
// Scenario catalog: built-in platform presets plus user scenario files.
//
// The built-ins pin the paper's two machines — "dardel" and "vera" are
// bit-identical to the legacy topo::Machine / sim::*Config factory bundles
// (tests/test_scenario.cpp pins the equivalence field by field) — and add
// presets that exercise regimes the paper never measured: a single-socket
// EPYC-like quad-NUMA SMT-2 box, a preemption-heavy cloud node, a quiet
// tuned HPC node, a DVFS-unstable machine with deep frequency dips, and
// two *asymmetric* node-group machines ("biglittle" 4P+4E mixed-SMT,
// "lopsided-numa" 12c+4c uneven domains).
//
// Selection is threaded through the campaign driver as
// `--scenario NAME-OR-FILE` / OMNIVAR_SCENARIO: a catalog name resolves
// here; anything that looks like a path (contains '/' or '.') loads a
// scenario file (scenario.hpp's key=value format).

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace omv::scenario {

/// Immutable process-wide scenario catalog (name-sorted).
class ScenarioRegistry {
 public:
  static const ScenarioRegistry& instance();

  /// Scenario by name. Throws std::out_of_range (message lists the
  /// catalog) when absent.
  [[nodiscard]] const ScenarioSpec& get(const std::string& name) const;

  /// Scenario by name; nullptr when absent.
  [[nodiscard]] const ScenarioSpec* find(const std::string& name) const
      noexcept;

  /// All built-in scenarios, sorted by name.
  [[nodiscard]] const std::vector<ScenarioSpec>& all() const noexcept {
    return scenarios_;
  }

  /// Comma-separated catalog names (error messages, usage text).
  [[nodiscard]] std::string names() const;

 private:
  ScenarioRegistry();
  std::vector<ScenarioSpec> scenarios_;
};

/// Loads a scenario file. Throws std::runtime_error on I/O or parse errors.
[[nodiscard]] ScenarioSpec load_file(const std::string& path);

/// Resolves a --scenario / OMNIVAR_SCENARIO value: a catalog name when it
/// matches one, else a scenario-file path when the value contains '/' or
/// '.'; anything else throws std::runtime_error listing the catalog.
[[nodiscard]] ScenarioSpec resolve(const std::string& name_or_path);

}  // namespace omv::scenario
