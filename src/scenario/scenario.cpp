#include "scenario/scenario.hpp"

#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/json_writer.hpp"
#include "scenario/registry.hpp"

namespace omv::scenario {

namespace {

/// Enumerates every numeric field of a ScenarioSpec in the fixed canonical
/// order. One visitor drives the fingerprint, the serializer and the
/// parser, so the three can never disagree about the field set. `f` is
/// called as f(name, ref) with ref being std::size_t& or double& (const
/// when SpecT is const).
template <typename FreqT, typename F>
void freq_fields(const std::string& prefix, FreqT& c, F&& f) {
  f(prefix + "episode_rate", c.episode_rate);
  f(prefix + "episode_mean", c.episode_mean);
  f(prefix + "episode_sigma_log", c.episode_sigma_log);
  f(prefix + "depth_lo", c.depth_lo);
  f(prefix + "depth_hi", c.depth_hi);
  f(prefix + "jitter", c.jitter);
  f(prefix + "run_cap_prob", c.run_cap_prob);
  f(prefix + "run_cap_depth", c.run_cap_depth);
  f(prefix + "cap_load_threshold", c.cap_load_threshold);
  f(prefix + "cross_numa_rate_mult", c.cross_numa_rate_mult);
}

template <typename SpecT, typename F>
void for_each_field(SpecT& s, F&& f) {
  f(std::string("machine.sockets"), s.machine.sockets);
  f(std::string("machine.numa_per_socket"), s.machine.numa_per_socket);
  f(std::string("machine.cores_per_numa"), s.machine.cores_per_numa);
  f(std::string("machine.smt"), s.machine.smt);
  f(std::string("machine.base_ghz"), s.machine.base_ghz);
  f(std::string("machine.max_ghz"), s.machine.max_ghz);

  f(std::string("noise.tick_period"), s.sim.noise.tick_period);
  f(std::string("noise.tick_duration"), s.sim.noise.tick_duration);
  f(std::string("noise.daemon_rate"), s.sim.noise.daemon_rate);
  f(std::string("noise.daemon_mean"), s.sim.noise.daemon_mean);
  f(std::string("noise.daemon_sigma_log"), s.sim.noise.daemon_sigma_log);
  f(std::string("noise.kworker_rate_per_cpu"),
    s.sim.noise.kworker_rate_per_cpu);
  f(std::string("noise.kworker_mean"), s.sim.noise.kworker_mean);
  f(std::string("noise.kworker_sigma_log"), s.sim.noise.kworker_sigma_log);
  f(std::string("noise.irq_rate"), s.sim.noise.irq_rate);
  f(std::string("noise.irq_xm"), s.sim.noise.irq_xm);
  f(std::string("noise.irq_alpha"), s.sim.noise.irq_alpha);
  f(std::string("noise.irq_cpus"), s.sim.noise.irq_cpus);
  f(std::string("noise.degrade_prob"), s.sim.noise.degrade_prob);
  f(std::string("noise.degrade_rate_mult"), s.sim.noise.degrade_rate_mult);
  f(std::string("noise.daemon_miss_factor"), s.sim.noise.daemon_miss_factor);
  f(std::string("noise.smt_absorb_factor"), s.sim.noise.smt_absorb_factor);

  freq_fields("freq.", s.sim.freq, f);
  freq_fields("freq_session.", s.freq_session, f);

  f(std::string("mem.domain_gbps"), s.sim.mem.domain_gbps);
  f(std::string("mem.per_core_gbps"), s.sim.mem.per_core_gbps);
  f(std::string("mem.remote_numa_factor"), s.sim.mem.remote_numa_factor);
  f(std::string("mem.remote_socket_factor"),
    s.sim.mem.remote_socket_factor);
  f(std::string("mem.jitter_sigma_log"), s.sim.mem.jitter_sigma_log);

  f(std::string("costs.fork_base"), s.sim.costs.fork_base);
  f(std::string("costs.fork_per_thread"), s.sim.costs.fork_per_thread);
  f(std::string("costs.barrier_base"), s.sim.costs.barrier_base);
  f(std::string("costs.barrier_per_level"), s.sim.costs.barrier_per_level);
  f(std::string("costs.barrier_numa_step"), s.sim.costs.barrier_numa_step);
  f(std::string("costs.barrier_socket_step"),
    s.sim.costs.barrier_socket_step);
  f(std::string("costs.barrier_central_per_thread"),
    s.sim.costs.barrier_central_per_thread);
  f(std::string("costs.reduction_per_level"),
    s.sim.costs.reduction_per_level);
  f(std::string("costs.critical_enter"), s.sim.costs.critical_enter);
  f(std::string("costs.lock_op"), s.sim.costs.lock_op);
  f(std::string("costs.atomic_op"), s.sim.costs.atomic_op);
  f(std::string("costs.atomic_contention"), s.sim.costs.atomic_contention);
  f(std::string("costs.static_setup"), s.sim.costs.static_setup);
  f(std::string("costs.sched_grab_base"), s.sim.costs.sched_grab_base);
  f(std::string("costs.sched_grab_contention"),
    s.sim.costs.sched_grab_contention);
  f(std::string("costs.ordered_wait"), s.sim.costs.ordered_wait);
  f(std::string("costs.single_arbitration"),
    s.sim.costs.single_arbitration);
  f(std::string("costs.migration_cost"), s.sim.costs.migration_cost);
  f(std::string("costs.oversub_stall_mean"),
    s.sim.costs.oversub_stall_mean);
  f(std::string("costs.oversub_stall_sigma"),
    s.sim.costs.oversub_stall_sigma);
  f(std::string("costs.work_scale"), s.sim.costs.work_scale);
  f(std::string("costs.smt_throughput"), s.sim.costs.smt_throughput);
  f(std::string("costs.smt_jitter"), s.sim.costs.smt_jitter);
  f(std::string("costs.smt_sync_overhead"), s.sim.costs.smt_sync_overhead);
  f(std::string("costs.smt_sync_jitter"), s.sim.costs.smt_sync_jitter);
}

/// Functor overload set for the field visitor (lambdas can't overload).
template <typename UintF, typename DoubleF>
struct FieldVisitor {
  UintF on_uint;
  DoubleF on_double;
  void operator()(const std::string& n, std::size_t& v) { on_uint(n, v); }
  void operator()(const std::string& n, const std::size_t& v) {
    on_uint(n, const_cast<std::size_t&>(v));
  }
  void operator()(const std::string& n, double& v) { on_double(n, v); }
  void operator()(const std::string& n, const double& v) {
    on_double(n, const_cast<double&>(v));
  }
};

template <typename UintF, typename DoubleF>
FieldVisitor<UintF, DoubleF> field_visitor(UintF u, DoubleF d) {
  return {std::move(u), std::move(d)};
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void parse_fail(const std::string& origin, std::size_t line,
                             const std::string& what) {
  throw std::runtime_error("scenario " + origin + ":" +
                           std::to_string(line) + ": " + what);
}

bool parse_double_strict(std::string_view text, double& out) {
  const std::string buf(text);
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_size_strict(std::string_view text, std::size_t& out) {
  const std::string buf(text);
  if (buf.empty()) return false;
  for (const char c : buf) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

topo::Machine MachineSpec::build() const {
  return topo::Machine::uniform(label, sockets, numa_per_socket,
                                cores_per_numa, smt, base_ghz, max_ghz);
}

SpecKey ScenarioSpec::key() const {
  SpecKey k;
  k.add("scenario", name);
  k.add("display", display);
  k.add("machine.label", machine.label);
  for_each_field(
      *this, field_visitor(
                 [&k](const std::string& n, std::size_t& v) { k.add(n, v); },
                 [&k](const std::string& n, double& v) { k.add(n, v); }));
  return k;
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream os;
  os << "# omnivar scenario: " << name << "\n";
  os << "name = " << name << "\n";
  os << "display = " << display << "\n";
  if (!description.empty()) os << "description = " << description << "\n";
  os << "machine.label = " << machine.label << "\n";
  for_each_field(
      *this,
      field_visitor(
          [&os](const std::string& n, std::size_t& v) {
            os << n << " = " << v << "\n";
          },
          [&os](const std::string& n, double& v) {
            os << n << " = " << json::number(v) << "\n";
          }));
  return os.str();
}

std::string ScenarioSpec::geometry_summary() const {
  std::ostringstream os;
  os << machine.sockets << (machine.sockets == 1 ? " socket" : " sockets")
     << " x " << machine.numa_per_socket << " NUMA x "
     << machine.cores_per_numa << " cores x SMT-" << machine.smt << ", "
     << machine.base_ghz << "-" << machine.max_ghz << " GHz";
  return os.str();
}

ScenarioSpec parse_text(const std::string& text, const std::string& origin) {
  ScenarioSpec spec;
  bool any_field = false;
  bool name_set = false;
  bool display_set = false;
  std::set<std::string> seen;
  std::istringstream is(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      parse_fail(origin, line_no,
                 "expected 'key = value', got '" + std::string(line) + "'");
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) parse_fail(origin, line_no, "empty key");
    if (!seen.insert(key).second) {
      parse_fail(origin, line_no, "duplicate assignment of '" + key + "'");
    }

    if (key == "base") {
      if (any_field) {
        parse_fail(origin, line_no,
                   "'base' must precede every overridden field");
      }
      const ScenarioSpec* preset =
          ScenarioRegistry::instance().find(std::string(value));
      if (preset == nullptr) {
        parse_fail(origin, line_no,
                   "unknown base preset '" + std::string(value) + "'");
      }
      const std::string keep_name = spec.name;
      const std::string keep_display = spec.display;
      const std::string keep_desc = spec.description;
      spec = *preset;
      if (!keep_name.empty()) spec.name = keep_name;
      if (!keep_display.empty()) spec.display = keep_display;
      if (!keep_desc.empty()) spec.description = keep_desc;
      continue;
    }
    if (key == "name") {
      spec.name = std::string(value);
      name_set = true;
      continue;
    }
    if (key == "display") {
      spec.display = std::string(value);
      display_set = true;
      continue;
    }
    if (key == "description") {
      spec.description = std::string(value);
      continue;
    }
    if (key == "machine.label") {
      spec.machine.label = std::string(value);
      any_field = true;
      continue;
    }

    bool matched = false;
    bool ok = true;
    for_each_field(
        spec,
        field_visitor(
            [&](const std::string& n, std::size_t& v) {
              if (n != key) return;
              matched = true;
              ok = parse_size_strict(value, v);
            },
            [&](const std::string& n, double& v) {
              if (n != key) return;
              matched = true;
              ok = parse_double_strict(value, v);
            }));
    if (!matched) parse_fail(origin, line_no, "unknown key '" + key + "'");
    if (!ok) {
      parse_fail(origin, line_no,
                 "malformed value '" + std::string(value) + "' for '" + key +
                     "'");
    }
    any_field = true;
  }

  if (spec.name.empty()) {
    throw std::runtime_error("scenario " + origin +
                             ": missing required 'name'");
  }
  // A renamed derivation must not masquerade as its base: when the file
  // sets a fresh name without a display, the name is the display.
  if (!display_set && (name_set || spec.display.empty())) {
    spec.display = spec.name;
  }
  if (spec.machine.label == "machine") spec.machine.label = spec.name;
  // Surface geometry errors (zero dimensions, max_ghz < base_ghz) at load
  // time, not deep inside the first harness that builds the machine.
  // Machine's own validation throws std::invalid_argument; rewrap so every
  // scenario-load failure is one exception type naming the origin.
  try {
    (void)spec.machine.build();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("scenario " + origin + ": invalid machine (" +
                             e.what() + ")");
  }
  return spec;
}

}  // namespace omv::scenario
