#include "scenario/scenario.hpp"

#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/json_writer.hpp"
#include "scenario/registry.hpp"

namespace omv::scenario {

namespace {

/// Enumerates every numeric field of a ScenarioSpec in the fixed canonical
/// order. One visitor drives the fingerprint, the serializer and the
/// parser, so the three can never disagree about the field set. `f` is
/// called as f(name, ref) with ref being std::size_t& or double& (const
/// when SpecT is const).
template <typename FreqT, typename F>
void freq_fields(const std::string& prefix, FreqT& c, F&& f) {
  f(prefix + "episode_rate", c.episode_rate);
  f(prefix + "episode_mean", c.episode_mean);
  f(prefix + "episode_sigma_log", c.episode_sigma_log);
  f(prefix + "depth_lo", c.depth_lo);
  f(prefix + "depth_hi", c.depth_hi);
  f(prefix + "jitter", c.jitter);
  f(prefix + "run_cap_prob", c.run_cap_prob);
  f(prefix + "run_cap_depth", c.run_cap_depth);
  f(prefix + "cap_load_threshold", c.cap_load_threshold);
  f(prefix + "cross_numa_rate_mult", c.cross_numa_rate_mult);
}

template <typename SpecT, typename F>
void for_each_field(SpecT& s, F&& f) {
  f(std::string("machine.sockets"), s.machine.sockets);
  f(std::string("machine.numa_per_socket"), s.machine.numa_per_socket);
  f(std::string("machine.cores_per_numa"), s.machine.cores_per_numa);
  f(std::string("machine.smt"), s.machine.smt);
  f(std::string("machine.base_ghz"), s.machine.base_ghz);
  f(std::string("machine.max_ghz"), s.machine.max_ghz);

  f(std::string("noise.tick_period"), s.sim.noise.tick_period);
  f(std::string("noise.tick_duration"), s.sim.noise.tick_duration);
  f(std::string("noise.daemon_rate"), s.sim.noise.daemon_rate);
  f(std::string("noise.daemon_mean"), s.sim.noise.daemon_mean);
  f(std::string("noise.daemon_sigma_log"), s.sim.noise.daemon_sigma_log);
  f(std::string("noise.kworker_rate_per_cpu"),
    s.sim.noise.kworker_rate_per_cpu);
  f(std::string("noise.kworker_mean"), s.sim.noise.kworker_mean);
  f(std::string("noise.kworker_sigma_log"), s.sim.noise.kworker_sigma_log);
  f(std::string("noise.irq_rate"), s.sim.noise.irq_rate);
  f(std::string("noise.irq_xm"), s.sim.noise.irq_xm);
  f(std::string("noise.irq_alpha"), s.sim.noise.irq_alpha);
  f(std::string("noise.irq_cpus"), s.sim.noise.irq_cpus);
  f(std::string("noise.degrade_prob"), s.sim.noise.degrade_prob);
  f(std::string("noise.degrade_rate_mult"), s.sim.noise.degrade_rate_mult);
  f(std::string("noise.daemon_miss_factor"), s.sim.noise.daemon_miss_factor);
  f(std::string("noise.smt_absorb_factor"), s.sim.noise.smt_absorb_factor);

  freq_fields("freq.", s.sim.freq, f);
  freq_fields("freq_session.", s.freq_session, f);

  f(std::string("mem.domain_gbps"), s.sim.mem.domain_gbps);
  f(std::string("mem.per_core_gbps"), s.sim.mem.per_core_gbps);
  f(std::string("mem.remote_numa_factor"), s.sim.mem.remote_numa_factor);
  f(std::string("mem.remote_socket_factor"),
    s.sim.mem.remote_socket_factor);
  f(std::string("mem.jitter_sigma_log"), s.sim.mem.jitter_sigma_log);

  f(std::string("costs.fork_base"), s.sim.costs.fork_base);
  f(std::string("costs.fork_per_thread"), s.sim.costs.fork_per_thread);
  f(std::string("costs.barrier_base"), s.sim.costs.barrier_base);
  f(std::string("costs.barrier_per_level"), s.sim.costs.barrier_per_level);
  f(std::string("costs.barrier_numa_step"), s.sim.costs.barrier_numa_step);
  f(std::string("costs.barrier_socket_step"),
    s.sim.costs.barrier_socket_step);
  f(std::string("costs.barrier_central_per_thread"),
    s.sim.costs.barrier_central_per_thread);
  f(std::string("costs.reduction_per_level"),
    s.sim.costs.reduction_per_level);
  f(std::string("costs.critical_enter"), s.sim.costs.critical_enter);
  f(std::string("costs.lock_op"), s.sim.costs.lock_op);
  f(std::string("costs.atomic_op"), s.sim.costs.atomic_op);
  f(std::string("costs.atomic_contention"), s.sim.costs.atomic_contention);
  f(std::string("costs.static_setup"), s.sim.costs.static_setup);
  f(std::string("costs.sched_grab_base"), s.sim.costs.sched_grab_base);
  f(std::string("costs.sched_grab_contention"),
    s.sim.costs.sched_grab_contention);
  f(std::string("costs.ordered_wait"), s.sim.costs.ordered_wait);
  f(std::string("costs.single_arbitration"),
    s.sim.costs.single_arbitration);
  f(std::string("costs.migration_cost"), s.sim.costs.migration_cost);
  f(std::string("costs.oversub_stall_mean"),
    s.sim.costs.oversub_stall_mean);
  f(std::string("costs.oversub_stall_sigma"),
    s.sim.costs.oversub_stall_sigma);
  f(std::string("costs.work_scale"), s.sim.costs.work_scale);
  f(std::string("costs.smt_throughput"), s.sim.costs.smt_throughput);
  f(std::string("costs.smt_jitter"), s.sim.costs.smt_jitter);
  f(std::string("costs.smt_sync_overhead"), s.sim.costs.smt_sync_overhead);
  f(std::string("costs.smt_sync_jitter"), s.sim.costs.smt_sync_jitter);
}

/// The per-group fields of the v2 [group <name>] stanza, minus the two
/// special cases (`socket` pins are optional and mutually exclusive with
/// `sockets`; the name lives in the stanza header). Shared by the
/// fingerprint, the serializer and the parser like for_each_field.
template <typename GroupT, typename F>
void group_fields(const std::string& prefix, GroupT& g, F&& f) {
  f(prefix + "sockets", g.sockets);
  f(prefix + "numa", g.numa);
  f(prefix + "cores", g.cores);
  f(prefix + "smt", g.smt);
  f(prefix + "base_ghz", g.base_ghz);
  f(prefix + "max_ghz", g.max_ghz);
  f(prefix + "work_rate", g.work_rate);
}

/// True for the uniform machine geometry keys that cannot be mixed with
/// [group ...] stanzas (machine.label is identity, not geometry).
bool is_uniform_geometry_key(const std::string& key) {
  return key.rfind("machine.", 0) == 0 && key != "machine.label";
}

/// True when `key` is a known top-level scenario key (identity keys or a
/// for_each_field name) — distinguishes "misplaced global key inside a
/// stanza" from "no such key at all" in parser diagnostics.
bool is_global_key(const std::string& key) {
  if (key == "base" || key == "name" || key == "display" ||
      key == "description" || key == "machine.label") {
    return true;
  }
  bool found = false;
  ScenarioSpec probe;
  for_each_field(probe, [&](const std::string& n, auto&) {
    if (n == key) found = true;
  });
  return found;
}

/// Functor overload set for the field visitor (lambdas can't overload).
template <typename UintF, typename DoubleF>
struct FieldVisitor {
  UintF on_uint;
  DoubleF on_double;
  void operator()(const std::string& n, std::size_t& v) { on_uint(n, v); }
  void operator()(const std::string& n, const std::size_t& v) {
    on_uint(n, const_cast<std::size_t&>(v));
  }
  void operator()(const std::string& n, double& v) { on_double(n, v); }
  void operator()(const std::string& n, const double& v) {
    on_double(n, const_cast<double&>(v));
  }
};

template <typename UintF, typename DoubleF>
FieldVisitor<UintF, DoubleF> field_visitor(UintF u, DoubleF d) {
  return {std::move(u), std::move(d)};
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void parse_fail(const std::string& origin, std::size_t line,
                             const std::string& what) {
  throw std::runtime_error("scenario " + origin + ":" +
                           std::to_string(line) + ": " + what);
}

bool parse_double_strict(std::string_view text, double& out) {
  const std::string buf(text);
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_size_strict(std::string_view text, std::size_t& out) {
  const std::string buf(text);
  if (buf.empty()) return false;
  for (const char c : buf) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

[[noreturn]] void spec_fail(const std::string& what) {
  throw std::invalid_argument("MachineSpec: " + what);
}

}  // namespace

topo::Machine MachineSpec::build() const {
  if (groups.empty()) {
    return topo::Machine::uniform(label, sockets, numa_per_socket,
                                  cores_per_numa, smt, base_ghz, max_ghz);
  }

  std::vector<topo::CoreClass> classes;
  classes.reserve(groups.size());
  struct CoreRec {
    std::size_t numa;
    std::size_t socket;
    std::size_t cls;
    std::size_t smt;
  };
  std::vector<CoreRec> core_recs;
  std::size_t next_socket = 0;
  std::size_t next_numa = 0;
  std::size_t max_smt = 0;
  std::set<std::string> names;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const NodeGroupSpec& g = groups[gi];
    if (g.name.empty()) spec_fail("group name must not be empty");
    if (!names.insert(g.name).second) {
      spec_fail("duplicate group name '" + g.name + "'");
    }
    if (g.numa == 0 || g.cores == 0 || g.smt == 0 ||
        (!g.socket_pinned() && g.sockets == 0)) {
      spec_fail("zero-sized dimension in group '" + g.name + "'");
    }
    if (!(g.work_rate > 0.0)) {
      spec_fail("work_rate of group '" + g.name + "' must be positive");
    }
    classes.push_back({g.name, g.base_ghz, g.max_ghz});
    std::size_t first_socket = 0;
    std::size_t socket_count = 1;
    if (g.socket_pinned()) {
      if (g.sockets != 1) {
        spec_fail("group '" + g.name +
                  "' pins an existing socket and cannot also span " +
                  std::to_string(g.sockets) + " fresh sockets");
      }
      if (g.socket >= next_socket) {
        spec_fail("group '" + g.name + "' pins socket " +
                  std::to_string(g.socket) + " but only " +
                  std::to_string(next_socket) +
                  " socket(s) exist before it (pins must reference an "
                  "earlier group's socket)");
      }
      first_socket = g.socket;
    } else {
      first_socket = next_socket;
      socket_count = g.sockets;
      next_socket += g.sockets;
    }
    max_smt = std::max(max_smt, g.smt);
    for (std::size_t s = 0; s < socket_count; ++s) {
      for (std::size_t d = 0; d < g.numa; ++d) {
        const std::size_t numa_id = next_numa++;
        for (std::size_t c = 0; c < g.cores; ++c) {
          core_recs.push_back({numa_id, first_socket + s, gi, g.smt});
        }
      }
    }
  }

  // Linux-convention numbering generalized to mixed SMT: os ids walk all
  // first siblings in core order, then the second siblings of every core
  // that has one, and so on — on symmetric machines this is exactly the
  // uniform() numbering.
  std::vector<topo::HwThread> threads;
  threads.reserve(core_recs.size() * max_smt);
  std::size_t os_id = 0;
  for (std::size_t s = 0; s < max_smt; ++s) {
    for (std::size_t core = 0; core < core_recs.size(); ++core) {
      const CoreRec& rec = core_recs[core];
      if (s >= rec.smt) continue;
      topo::HwThread t;
      t.os_id = os_id++;
      t.core = core;
      t.numa = rec.numa;
      t.socket = rec.socket;
      t.smt_index = s;
      t.cls = rec.cls;
      threads.push_back(t);
    }
  }
  return topo::Machine(label, std::move(threads), std::move(classes));
}

std::vector<double> MachineSpec::class_work_rates() const {
  std::vector<double> rates;
  rates.reserve(groups.size());
  for (const auto& g : groups) rates.push_back(g.work_rate);
  return rates;
}

SpecKey ScenarioSpec::key() const {
  SpecKey k;
  k.add("scenario", name);
  k.add("display", display);
  k.add("machine.label", machine.label);
  for_each_field(
      *this, field_visitor(
                 [&k](const std::string& n, std::size_t& v) { k.add(n, v); },
                 [&k](const std::string& n, double& v) { k.add(n, v); }));
  // v2 node groups (absent on symmetric scenarios, whose fingerprints must
  // not move just because the group axis exists).
  if (!machine.groups.empty()) {
    k.add("machine.n_groups", machine.groups.size());
    for (std::size_t i = 0; i < machine.groups.size(); ++i) {
      const NodeGroupSpec& g = machine.groups[i];
      const std::string prefix = "group." + std::to_string(i) + ".";
      k.add(prefix + "name", g.name);
      if (g.socket_pinned()) k.add(prefix + "socket", g.socket);
      group_fields(
          prefix, g,
          field_visitor(
              [&k](const std::string& n, std::size_t& v) { k.add(n, v); },
              [&k](const std::string& n, double& v) { k.add(n, v); }));
    }
  }
  // Derived per-class calibration (populated from group work_rate keys;
  // folded in separately so a spec mutated in code cannot keep a stale
  // fingerprint).
  if (!sim.class_work_rate.empty()) {
    for (std::size_t i = 0; i < sim.class_work_rate.size(); ++i) {
      k.add("sim.class_work_rate." + std::to_string(i),
            sim.class_work_rate[i]);
    }
  }
  return k;
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream os;
  const bool v2 = !machine.groups.empty();
  os << "# omnivar scenario: " << name << "\n";
  os << "name = " << name << "\n";
  os << "display = " << display << "\n";
  if (!description.empty()) os << "description = " << description << "\n";
  os << "machine.label = " << machine.label << "\n";
  for_each_field(
      *this,
      field_visitor(
          [&os, v2](const std::string& n, std::size_t& v) {
            if (v2 && is_uniform_geometry_key(n)) return;
            os << n << " = " << v << "\n";
          },
          [&os, v2](const std::string& n, double& v) {
            if (v2 && is_uniform_geometry_key(n)) return;
            os << n << " = " << json::number(v) << "\n";
          }));
  // Group stanzas last: every global key must precede them (the parser
  // enforces this, so serialize-then-parse is always well-formed).
  for (const auto& g : machine.groups) {
    os << "[group " << g.name << "]\n";
    if (g.socket_pinned()) os << "socket = " << g.socket << "\n";
    group_fields(
        "", const_cast<NodeGroupSpec&>(g),
        field_visitor(
            [&os, &g](const std::string& n, std::size_t& v) {
              if (n == "sockets" && g.socket_pinned()) return;
              os << n << " = " << v << "\n";
            },
            [&os](const std::string& n, double& v) {
              os << n << " = " << json::number(v) << "\n";
            }));
  }
  return os.str();
}

std::string ScenarioSpec::geometry_summary() const {
  std::ostringstream os;
  if (machine.groups.empty()) {
    os << machine.sockets << (machine.sockets == 1 ? " socket" : " sockets")
       << " x " << machine.numa_per_socket << " NUMA x "
       << machine.cores_per_numa << " cores x SMT-" << machine.smt << ", "
       << machine.base_ghz << "-" << machine.max_ghz << " GHz";
    return os.str();
  }
  for (std::size_t i = 0; i < machine.groups.size(); ++i) {
    const NodeGroupSpec& g = machine.groups[i];
    if (i != 0) os << " + ";
    os << "[" << g.name << "] ";
    if (g.socket_pinned()) {
      os << "socket " << g.socket;
    } else {
      os << g.sockets << (g.sockets == 1 ? " socket" : " sockets");
    }
    os << " x " << g.numa << " NUMA x " << g.cores << " cores x SMT-"
       << g.smt << ", " << g.base_ghz << "-" << g.max_ghz << " GHz";
    if (g.work_rate != 1.0) os << " @" << g.work_rate << "x";
  }
  return os.str();
}

ScenarioSpec parse_text(const std::string& text, const std::string& origin) {
  ScenarioSpec spec;
  bool any_field = false;
  bool name_set = false;
  bool display_set = false;
  bool uniform_geom_in_file = false;
  bool groups_in_file = false;
  std::string base_name;
  std::set<std::string> seen;
  std::istringstream is(text);
  std::string raw;
  std::size_t line_no = 0;
  // Index of the [group ...] stanza currently open; npos outside stanzas.
  constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);
  std::size_t cur_group = kNoGroup;
  // Which of the mutually exclusive sockets/socket keys each group used.
  std::vector<bool> group_set_sockets;
  std::vector<bool> group_set_socket;

  while (std::getline(is, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (line.front() == '[') {
      // v2 stanza header: [group <name>].
      if (line.back() != ']') {
        parse_fail(origin, line_no,
                   "malformed stanza '" + std::string(line) +
                       "' (expected '[group <name>]')");
      }
      const std::string_view inner = trim(line.substr(1, line.size() - 2));
      constexpr std::string_view kGroup = "group";
      if (inner.substr(0, kGroup.size()) != kGroup ||
          (inner.size() > kGroup.size() && inner[kGroup.size()] != ' ' &&
           inner[kGroup.size()] != '\t')) {
        parse_fail(origin, line_no,
                   "unknown stanza '" + std::string(line) +
                       "' (only '[group <name>]' is supported)");
      }
      const std::string gname{trim(inner.substr(kGroup.size()))};
      if (gname.empty()) {
        parse_fail(origin, line_no, "empty group name in '[group ...]'");
      }
      if (uniform_geom_in_file) {
        parse_fail(origin, line_no,
                   "cannot mix machine.* geometry keys with [group ...] "
                   "stanzas in one file");
      }
      if (!groups_in_file) {
        // The first stanza starts a fresh geometry definition: uniform
        // fields return to their struct defaults (the residual values are
        // still fingerprinted, so this reset must match MachineSpec{}
        // exactly — hence the default-constructed assignment, not
        // re-stated literals) and any groups inherited via `base` are
        // discarded (the calibration bundle is kept).
        groups_in_file = true;
        const std::string keep_label = spec.machine.label;
        spec.machine = MachineSpec{};
        spec.machine.label = keep_label;
        spec.sim.class_work_rate.clear();
      }
      for (const auto& g : spec.machine.groups) {
        if (g.name == gname) {
          parse_fail(origin, line_no,
                     "duplicate group name '" + gname + "'");
        }
      }
      NodeGroupSpec g;
      g.name = gname;
      spec.machine.groups.push_back(std::move(g));
      group_set_sockets.push_back(false);
      group_set_socket.push_back(false);
      cur_group = spec.machine.groups.size() - 1;
      any_field = true;
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      parse_fail(origin, line_no,
                 "expected 'key = value', got '" + std::string(line) + "'");
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) parse_fail(origin, line_no, "empty key");

    if (cur_group != kNoGroup) {
      // Inside a [group ...] stanza: only the per-group keys are valid.
      NodeGroupSpec& g = spec.machine.groups[cur_group];
      if (!seen.insert("group:" + g.name + ":" + key).second) {
        parse_fail(origin, line_no,
                   "duplicate assignment of '" + key + "' in group '" +
                       g.name + "'");
      }
      bool matched = false;
      bool ok = true;
      if (key == "socket") {
        matched = true;
        group_set_socket[cur_group] = true;
        if (group_set_sockets[cur_group]) {
          parse_fail(origin, line_no,
                     "group '" + g.name +
                         "' cannot set both 'sockets' and 'socket'");
        }
        ok = parse_size_strict(value, g.socket);
      } else {
        group_fields(
            "", g,
            field_visitor(
                [&](const std::string& n, std::size_t& v) {
                  if (n != key) return;
                  matched = true;
                  ok = parse_size_strict(value, v);
                },
                [&](const std::string& n, double& v) {
                  if (n != key) return;
                  matched = true;
                  ok = parse_double_strict(value, v);
                }));
        if (matched && key == "sockets") {
          group_set_sockets[cur_group] = true;
          if (group_set_socket[cur_group]) {
            parse_fail(origin, line_no,
                       "group '" + g.name +
                           "' cannot set both 'sockets' and 'socket'");
          }
        }
      }
      if (!matched) {
        if (is_global_key(key)) {
          parse_fail(origin, line_no,
                     "global key '" + key +
                         "' must precede every [group ...] stanza");
        }
        parse_fail(origin, line_no,
                   "unknown key '" + key + "' in group '" + g.name +
                       "' (valid: sockets, socket, numa, cores, smt, "
                       "base_ghz, max_ghz, work_rate)");
      }
      if (!ok) {
        parse_fail(origin, line_no,
                   "malformed value '" + std::string(value) + "' for '" +
                       key + "'");
      }
      continue;
    }

    // NOTE: once a stanza has opened, cur_group stays set for the rest of
    // the file, so every later key=value line is handled above — global
    // keys after a stanza get the "must precede" diagnostic there.
    if (!seen.insert(key).second) {
      parse_fail(origin, line_no, "duplicate assignment of '" + key + "'");
    }

    if (key == "base") {
      if (any_field) {
        parse_fail(origin, line_no,
                   "'base' must precede every overridden field");
      }
      const ScenarioSpec* preset =
          ScenarioRegistry::instance().find(std::string(value));
      if (preset == nullptr) {
        parse_fail(origin, line_no,
                   "unknown base preset '" + std::string(value) + "'");
      }
      const std::string keep_name = spec.name;
      const std::string keep_display = spec.display;
      const std::string keep_desc = spec.description;
      spec = *preset;
      base_name = std::string(value);
      if (!keep_name.empty()) spec.name = keep_name;
      if (!keep_display.empty()) spec.display = keep_display;
      if (!keep_desc.empty()) spec.description = keep_desc;
      continue;
    }
    if (key == "name") {
      spec.name = std::string(value);
      name_set = true;
      continue;
    }
    if (key == "display") {
      spec.display = std::string(value);
      display_set = true;
      continue;
    }
    if (key == "description") {
      spec.description = std::string(value);
      continue;
    }
    if (key == "machine.label") {
      spec.machine.label = std::string(value);
      any_field = true;
      continue;
    }

    if (is_uniform_geometry_key(key) && spec.machine.asymmetric()) {
      // groups_in_file is false here, so the groups came from `base`.
      parse_fail(origin, line_no,
                 "base preset '" + base_name +
                     "' defines node groups; its geometry is overridden "
                     "with [group ...] stanzas, not machine.* keys");
    }

    bool matched = false;
    bool ok = true;
    for_each_field(
        spec,
        field_visitor(
            [&](const std::string& n, std::size_t& v) {
              if (n != key) return;
              matched = true;
              ok = parse_size_strict(value, v);
            },
            [&](const std::string& n, double& v) {
              if (n != key) return;
              matched = true;
              ok = parse_double_strict(value, v);
            }));
    if (!matched) parse_fail(origin, line_no, "unknown key '" + key + "'");
    if (!ok) {
      parse_fail(origin, line_no,
                 "malformed value '" + std::string(value) + "' for '" + key +
                     "'");
    }
    if (is_uniform_geometry_key(key)) uniform_geom_in_file = true;
    any_field = true;
  }

  if (spec.name.empty()) {
    throw std::runtime_error("scenario " + origin +
                             ": missing required 'name'");
  }
  // A renamed derivation must not masquerade as its base: when the file
  // sets a fresh name without a display, the name is the display.
  if (!display_set && (name_set || spec.display.empty())) {
    spec.display = spec.name;
  }
  if (spec.machine.label == "machine") spec.machine.label = spec.name;
  // The per-class calibration is derived state: re-derive it whenever this
  // file defined (or inherited) groups so it can never drift from them.
  if (spec.machine.asymmetric()) {
    spec.sim.class_work_rate = spec.machine.class_work_rates();
  }
  // Surface geometry errors (zero dimensions, max_ghz < base_ghz, bad
  // socket pins, inconsistent groups) at load time, not deep inside the
  // first harness that builds the machine. Machine's and MachineSpec's
  // validation throws std::invalid_argument; rewrap so every
  // scenario-load failure is one exception type naming the origin.
  try {
    (void)spec.machine.build();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("scenario " + origin + ": invalid machine (" +
                             e.what() + ")");
  }
  return spec;
}

}  // namespace omv::scenario
