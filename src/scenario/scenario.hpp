#pragma once
// Declarative platform scenarios.
//
// The paper contrasts one R×K protocol across two concrete machines
// (Dardel and Vera). This layer turns platform identity into *data*: a
// ScenarioSpec bundles the machine geometry with every simulator profile
// (noise, frequency, memory, runtime costs) into one named, serializable
// value with a canonical fingerprint, so the same campaign can sweep the
// protocol across an open-ended catalog of machines — built-in presets,
// or user-authored scenario files (see registry.hpp).
//
// The fingerprint is a SpecKey over every physical field in a fixed order;
// it feeds the campaign result cache so cells simulated under one scenario
// can never be served to another (two scenarios that differ in any knob
// hash apart, even if they share a display name).

#include <cstddef>
#include <string>

#include "core/spec_hash.hpp"
#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace omv::scenario {

/// Machine geometry as data — the arguments of topo::Machine::uniform.
/// Keeping the symmetric-builder parameters (rather than a materialized
/// thread list) makes the spec serializable and fingerprintable in a few
/// numbers; asymmetric machines are out of scope for the catalog.
struct MachineSpec {
  std::string label = "machine";  ///< topo::Machine name.
  std::size_t sockets = 1;
  std::size_t numa_per_socket = 1;
  std::size_t cores_per_numa = 4;
  std::size_t smt = 1;
  double base_ghz = 2.0;
  double max_ghz = 3.0;

  /// Materializes the geometry. Throws std::invalid_argument on zero-sized
  /// dimensions or an invalid frequency range (Machine's own validation).
  [[nodiscard]] topo::Machine build() const;

  [[nodiscard]] std::size_t n_cores() const noexcept {
    return sockets * numa_per_socket * cores_per_numa;
  }
  [[nodiscard]] std::size_t n_threads() const noexcept {
    return n_cores() * smt;
  }
};

/// One named platform scenario: geometry + the full simulator calibration.
struct ScenarioSpec {
  std::string name;         ///< catalog key, e.g. "dardel".
  std::string display;      ///< harness-output name, e.g. "Dardel".
  std::string description;  ///< one line for --scenarios listings.
  MachineSpec machine;
  sim::SimConfig sim;  ///< noise + freq + mem + costs bundle.
  /// Frequency profile of an *active-DVFS session* on this platform — the
  /// paper's Figs. 6/7 were measured during Vera sessions with far more
  /// dip pressure than its baseline profile. Harnesses that reproduce
  /// those figures swap sim.freq for this.
  sim::FreqConfig freq_session;

  /// Canonical fingerprint key over every physical field (name, display,
  /// geometry, and all model parameters) in a fixed order.
  [[nodiscard]] SpecKey key() const;

  /// key().hex(): 16 lowercase hex digits naming this scenario's physics.
  [[nodiscard]] std::string fingerprint() const { return key().hex(); }

  /// Serializes to the scenario-file format (parse_text round-trips it to
  /// an identical fingerprint). Doubles are shortest-round-trip.
  [[nodiscard]] std::string to_text() const;

  /// One-line geometry summary, e.g.
  /// "2 sockets x 4 NUMA x 16 cores x SMT-2, 2.25-3.4 GHz".
  [[nodiscard]] std::string geometry_summary() const;
};

/// Parses the scenario-file format:
///
///   # comment
///   name = my-box            (required unless inherited via base)
///   display = MyBox          (defaults to name)
///   base = dardel            (optional: start from a catalog preset)
///   machine.sockets = 1
///   noise.daemon_rate = 200
///   freq_session.episode_rate = 0.5
///   ...
///
/// Unknown keys, malformed numbers and duplicate assignments throw
/// std::runtime_error naming `origin` and the line. `base` must appear
/// before any overridden field.
[[nodiscard]] ScenarioSpec parse_text(const std::string& text,
                                      const std::string& origin);

}  // namespace omv::scenario
