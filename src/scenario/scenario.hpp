#pragma once
// Declarative platform scenarios.
//
// The paper contrasts one R×K protocol across two concrete machines
// (Dardel and Vera). This layer turns platform identity into *data*: a
// ScenarioSpec bundles the machine geometry with every simulator profile
// (noise, frequency, memory, runtime costs) into one named, serializable
// value with a canonical fingerprint, so the same campaign can sweep the
// protocol across an open-ended catalog of machines — built-in presets,
// or user-authored scenario files (see registry.hpp).
//
// Geometry comes in two flavors:
//   * v1 (symmetric): the uniform-builder parameters — sockets x NUMA x
//     cores x SMT with one frequency range;
//   * v2 (asymmetric): a list of *node groups* ([group <name>] stanzas in
//     the file format), each contributing its own sockets/NUMA domains/
//     cores with per-group SMT width, frequency range and relative
//     compute speed (work_rate). Groups compose into one heterogeneous
//     topo::Machine via the explicit-thread-table constructor: big.LITTLE
//     splits, partially SMT-disabled nodes and lopsided NUMA domains are
//     all expressible as data.
//
// The fingerprint is a SpecKey over every physical field in a fixed order;
// it feeds the campaign result cache so cells simulated under one scenario
// can never be served to another (two scenarios that differ in any knob
// hash apart, even if they share a display name).

#include <cstddef>
#include <string>
#include <vector>

#include "core/spec_hash.hpp"
#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace omv::scenario {

/// One node group of an asymmetric machine: `sockets` fresh sockets (or a
/// pin onto an existing socket), each holding `numa` fresh NUMA domains of
/// `cores` cores with `smt` HW threads per core. The group is a topo core
/// class: its name, frequency range and relative compute speed ride on
/// every core it contributes.
struct NodeGroupSpec {
  /// Marks `socket` as "allocate fresh sockets" (the default).
  static constexpr std::size_t kFreshSocket = static_cast<std::size_t>(-1);

  std::string name;           ///< class name, e.g. "P" / "E".
  std::size_t sockets = 1;    ///< fresh sockets this group spans.
  std::size_t numa = 1;       ///< NUMA domains per socket.
  std::size_t cores = 1;      ///< cores per NUMA domain.
  std::size_t smt = 1;        ///< HW threads per core.
  double base_ghz = 2.0;
  double max_ghz = 3.0;
  /// Relative compute speed (1.0 = nominal; an E-core at 0.6 takes 1/0.6
  /// the time for the same work). Feeds sim::SimConfig::class_work_rate.
  double work_rate = 1.0;
  /// When != kFreshSocket: place the group's NUMA domains on this existing
  /// socket id (earlier groups must have created it; `sockets` must stay
  /// 1). This is how a big.LITTLE machine keeps both clusters on one die.
  std::size_t socket = kFreshSocket;

  [[nodiscard]] bool socket_pinned() const noexcept {
    return socket != kFreshSocket;
  }
  [[nodiscard]] std::size_t n_cores() const noexcept {
    return (socket_pinned() ? 1 : sockets) * numa * cores;
  }
  [[nodiscard]] std::size_t n_threads() const noexcept {
    return n_cores() * smt;
  }
};

/// Machine geometry as data. With `groups` empty this is exactly the
/// arguments of topo::Machine::uniform (the v1 symmetric format, and the
/// only shape the catalog's original presets use); with `groups` set the
/// uniform fields are ignored and the groups compose into one asymmetric
/// machine (the v2 format).
struct MachineSpec {
  std::string label = "machine";  ///< topo::Machine name.
  std::size_t sockets = 1;
  std::size_t numa_per_socket = 1;
  std::size_t cores_per_numa = 4;
  std::size_t smt = 1;
  double base_ghz = 2.0;
  double max_ghz = 3.0;
  /// v2 node groups; empty = symmetric uniform machine.
  std::vector<NodeGroupSpec> groups;

  /// Materializes the geometry. Throws std::invalid_argument on zero-sized
  /// dimensions, an invalid frequency range, a non-positive work_rate, a
  /// duplicate/empty group name, or a socket pin that does not reference a
  /// socket created by an earlier group.
  [[nodiscard]] topo::Machine build() const;

  /// Per-class relative compute speeds (one entry per group, in group
  /// order; empty for symmetric machines) — the sim::SimConfig::
  /// class_work_rate value matching build()'s class table.
  [[nodiscard]] std::vector<double> class_work_rates() const;

  [[nodiscard]] bool asymmetric() const noexcept { return !groups.empty(); }

  [[nodiscard]] std::size_t n_cores() const noexcept {
    if (groups.empty()) return sockets * numa_per_socket * cores_per_numa;
    std::size_t n = 0;
    for (const auto& g : groups) n += g.n_cores();
    return n;
  }
  [[nodiscard]] std::size_t n_threads() const noexcept {
    if (groups.empty()) return n_cores() * smt;
    std::size_t n = 0;
    for (const auto& g : groups) n += g.n_threads();
    return n;
  }
};

/// One named platform scenario: geometry + the full simulator calibration.
struct ScenarioSpec {
  std::string name;         ///< catalog key, e.g. "dardel".
  std::string display;      ///< harness-output name, e.g. "Dardel".
  std::string description;  ///< one line for --scenarios listings.
  MachineSpec machine;
  sim::SimConfig sim;  ///< noise + freq + mem + costs bundle.
  /// Frequency profile of an *active-DVFS session* on this platform — the
  /// paper's Figs. 6/7 were measured during Vera sessions with far more
  /// dip pressure than its baseline profile. Harnesses that reproduce
  /// those figures swap sim.freq for this.
  sim::FreqConfig freq_session;

  /// Canonical fingerprint key over every physical field (name, display,
  /// geometry — including every node group — and all model parameters) in
  /// a fixed order. Symmetric scenarios hash exactly as they did before
  /// node groups existed.
  [[nodiscard]] SpecKey key() const;

  /// key().hex(): 16 lowercase hex digits naming this scenario's physics.
  [[nodiscard]] std::string fingerprint() const { return key().hex(); }

  /// Serializes to the scenario-file format (parse_text round-trips it to
  /// an identical fingerprint). Doubles are shortest-round-trip. Node
  /// groups serialize as trailing [group <name>] stanzas; the uniform
  /// machine.* geometry keys are omitted when groups are present (the two
  /// cannot be mixed in one file).
  [[nodiscard]] std::string to_text() const;

  /// One-line geometry summary, e.g.
  /// "2 sockets x 4 NUMA x 16 cores x SMT-2, 2.25-3.4 GHz" or, for v2,
  /// "[P] 1 socket x 1 NUMA x 4 cores x SMT-2, 2.5-3.8 GHz + [E] ...".
  [[nodiscard]] std::string geometry_summary() const;
};

/// Parses the scenario-file format:
///
///   # comment
///   name = my-box            (required unless inherited via base)
///   display = MyBox          (defaults to name)
///   base = dardel            (optional: start from a catalog preset)
///   machine.sockets = 1
///   noise.daemon_rate = 200
///   freq_session.episode_rate = 0.5
///   ...
///   [group P]                (v2: asymmetric machines; stanzas last)
///   numa = 1
///   cores = 4
///   smt = 2
///   base_ghz = 2.5
///   max_ghz = 3.8
///   work_rate = 1
///   [group E]
///   socket = 0               (pin onto socket 0 — same die as P)
///   cores = 4
///   ...
///
/// Unknown keys, malformed numbers and duplicate assignments throw
/// std::runtime_error naming `origin` and the line. `base` must appear
/// before any overridden field. Group stanzas must follow every global
/// key; the first stanza replaces any machine geometry inherited via
/// `base`, and mixing explicit machine.* geometry keys with stanzas in
/// one file is an error.
[[nodiscard]] ScenarioSpec parse_text(const std::string& text,
                                      const std::string& origin);

}  // namespace omv::scenario
