#pragma once
// Shared scaffolding for the paper-reproduction bench harnesses.
//
// Every harness reproduces one table or figure of the paper and registers
// itself into the omnivar registry (cli/registry.hpp); the same source
// builds a standalone binary and one entry of the unified campaign driver.
// Harnesses run with no arguments using the paper's full protocol (10 runs
// x 100 outer repetitions); set OMNIVAR_QUICK=1 to shrink the protocol for
// smoke runs, or OMNIVAR_RUNS / OMNIVAR_REPS to override explicitly.
//
// Protocol execution is sharded across worker threads: pass --jobs=N (or
// set OMNIVAR_JOBS=N; 0 = one worker per hardware thread) to run the R
// independent runs of every configuration concurrently. Results are
// bit-identical to the serial default (--jobs=1) because each run derives
// its entire state from its run seed. With --out DIR, every protocol cell
// persists through the spec-hash result cache and the harness emits a JSON
// artifact (cli/campaign.hpp).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "cli/campaign.hpp"
#include "cli/options.hpp"
#include "cli/registry.hpp"
#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"
#include "core/report.hpp"
#include "core/spec_hash.hpp"
#include "omp_model/team.hpp"
#include "scenario/registry.hpp"
#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace omv::harness {

/// Mutable process-wide jobs override (kept for tests and ad-hoc callers;
/// harness code should use RunContext::jobs()).
inline std::size_t& jobs_override() {
  static std::size_t value = 0;
  return value;
}

/// Strict non-negative integer parse (see cli::parse_uint).
inline bool parse_uint(const char* text, std::size_t& out) {
  return cli::parse_uint(text, out);
}

/// Strict job-count parse ("0" = hardware concurrency).
inline bool parse_job_count(const char* text, std::size_t& out) {
  return cli::parse_job_count(text, out);
}

/// Applies a protocol-count override from the environment: a malformed or
/// zero value warns and leaves `value` unchanged (a typo'd OMNIVAR_RUNS
/// must not silently produce an empty RunMatrix and NaN statistics).
inline void apply_count_env(const char* name, std::size_t& value) {
  const char* text = std::getenv(name);
  if (text == nullptr) return;
  std::size_t v = 0;
  if (parse_uint(text, v) && v > 0) {
    value = v;
  } else {
    // Warn once per variable: paper_spec runs once per swept
    // configuration, and a dozen identical lines would bury real output.
    static std::set<std::string> warned;
    if (warned.insert(name).second) {
      std::fprintf(stderr,
                   "harness: ignoring malformed %s='%s' (expected a "
                   "positive integer)\n",
                   name, text);
    }
  }
}

/// Effective worker count honoring jobs_override() then OMNIVAR_JOBS
/// (kept for tests; harness run functions receive the resolved count via
/// RunContext::jobs()).
inline std::size_t jobs() { return cli::effective_jobs(jobs_override()); }

/// Parses the shared harness flags into jobs_override() (kept for tests
/// and ad-hoc embedding; the binaries' real entry points are
/// cli::run_standalone / cli::run_campaign).
inline void parse_args(int argc, char** argv) {
  const cli::Options o = cli::parse_options(argc, argv);
  for (const auto& e : o.errors) {
    std::fprintf(stderr, "harness: ignoring %s\n", e.c_str());
  }
  if (o.jobs != 0) jobs_override() = o.jobs;
}

/// Runs a spec through the ParallelRunner honoring the harness job count
/// (jobs_override / OMNIVAR_JOBS); `make_kernel` builds one private kernel
/// per run. Generic entry point for ad-hoc kernels that have no Sim*
/// benchmark object.
inline RunMatrix run_sharded(const ExperimentSpec& spec,
                             const RunKernelFactory& make_kernel) {
  return run_experiment_parallel(spec, make_kernel, jobs());
}

/// As above with an explicit worker count; 0 means one worker per
/// hardware thread, consistent with --jobs / OMNIVAR_JOBS.
inline RunMatrix run_sharded(const ExperimentSpec& spec,
                             const RunKernelFactory& make_kernel,
                             std::size_t n_jobs) {
  return run_experiment_parallel(spec, make_kernel, resolve_jobs(n_jobs));
}

/// Protocol spec honoring the environment overrides.
inline ExperimentSpec paper_spec(std::uint64_t seed, std::size_t runs = 10,
                                 std::size_t reps = 100) {
  ExperimentSpec spec;
  spec.runs = runs;
  spec.reps = reps;
  spec.warmup = 1;
  spec.seed = seed;
  if (const char* q = std::getenv("OMNIVAR_QUICK"); q && q[0] == '1') {
    spec.runs = std::min<std::size_t>(spec.runs, 3);
    spec.reps = std::min<std::size_t>(spec.reps, 10);
  }
  apply_count_env("OMNIVAR_RUNS", spec.runs);
  apply_count_env("OMNIVAR_REPS", spec.reps);
  return spec;
}

/// One materialized platform a harness runs on: a scenario's machine and
/// calibration, plus the scenario fingerprint every cell key absorbs so
/// cached cells can never be served across platforms.
struct Platform {
  std::string name;  ///< display name ("Dardel", "Vera", scenario display).
  topo::Machine machine;
  sim::SimConfig config;
  /// Frequency profile of an active-DVFS session on this platform (the
  /// paper's Figs. 6/7 regime); see freq_session_platform().
  sim::FreqConfig freq_session;
  std::string fingerprint;  ///< ScenarioSpec fingerprint (16-hex).
};

/// Materializes a scenario into a runnable platform.
inline Platform to_platform(const scenario::ScenarioSpec& s) {
  return {s.display, s.machine.build(), s.sim, s.freq_session,
          s.fingerprint()};
}

/// The two platforms of the paper — thin wrappers over the scenario
/// catalog (pinned bit-identical to the legacy factory bundles by
/// tests/test_scenario.cpp).
inline Platform dardel() {
  return to_platform(scenario::ScenarioRegistry::instance().get("dardel"));
}

inline Platform vera() {
  return to_platform(scenario::ScenarioRegistry::instance().get("vera"));
}

/// The platforms this invocation contrasts: the paper's Dardel+Vera pair
/// by default, the single selected scenario under --scenario /
/// OMNIVAR_SCENARIO. Each is recorded into the artifact's provenance.
inline std::vector<Platform> platforms(cli::RunContext& ctx) {
  std::vector<Platform> out;
  if (const auto* s = ctx.scenario()) {
    out.push_back(to_platform(*s));
  } else {
    out.push_back(dardel());
    out.push_back(vera());
  }
  for (const auto& p : out) ctx.note_platform(p.name, p.fingerprint);
  return out;
}

/// The single platform of the non-contrast harnesses (the paper staged
/// them on Dardel); the selected scenario when one is active.
inline Platform primary(cli::RunContext& ctx) {
  Platform p = ctx.scenario() ? to_platform(*ctx.scenario()) : dardel();
  ctx.note_platform(p.name, p.fingerprint);
  return p;
}

/// The frequency-figure platform: the scenario with its active-DVFS
/// session profile swapped in (default: the paper's dippy Vera session).
inline Platform freq_session_platform(cli::RunContext& ctx) {
  Platform p = ctx.scenario() ? to_platform(*ctx.scenario()) : vera();
  p.config.freq = p.freq_session;
  ctx.note_platform(p.name, p.fingerprint);
  return p;
}

/// True when a --scenario / OMNIVAR_SCENARIO selection replaced the paper
/// defaults (harnesses derive generic team sizes instead of the paper's
/// hand-picked ladders).
inline bool scenario_mode(const cli::RunContext& ctx) {
  return ctx.scenario() != nullptr;
}

/// Near-geometric thread ladder for an arbitrary machine: 2, 4, 8, ...
/// capped at the paper's spare-2-CPUs protocol size. Used by the scaling
/// harnesses in scenario mode (the paper platforms keep the publication's
/// hand-picked ladders).
inline std::vector<std::size_t> thread_ladder(const topo::Machine& m) {
  const std::size_t cap =
      m.n_threads() > 4 ? m.n_threads() - 2 : m.n_threads();
  std::vector<std::size_t> out;
  for (std::size_t t = 2; t < cap; t *= 2) out.push_back(t);
  if (out.empty() || out.back() != cap) out.push_back(cap);
  return out;
}

/// The "full but not oversaturated" team size: every physical core when
/// the machine has SMT headroom for the OS, else all-but-two HW threads
/// (Dardel: 128, Vera: 30 — the paper's full-scale columns).
inline std::size_t full_team(const topo::Machine& m) {
  return std::min(m.n_cores(),
                  m.n_threads() > 2 ? m.n_threads() - 2 : m.n_threads());
}

/// The paper's spare-2-CPUs full-node team (Dardel: 254, Vera: 30),
/// clamped so machines with <= 2 HW threads use every thread instead of
/// wrapping below zero.
inline std::size_t spare2_team(const topo::Machine& m) {
  return m.n_threads() > 2 ? m.n_threads() - 2 : m.n_threads();
}

/// OMP_PLACES spec of single-HW-thread places over explicit os ids, in
/// order. Consecutive runs compress to the "{start}:count:1" range form,
/// so on conventionally numbered (symmetric) machines this reproduces the
/// historical hand-written strings byte for byte.
inline std::string places_for_ids(const std::vector<std::size_t>& ids) {
  std::string out;
  std::size_t i = 0;
  while (i < ids.size()) {
    std::size_t j = i + 1;
    while (j < ids.size() && ids[j] == ids[j - 1] + 1) ++j;
    if (!out.empty()) out += ',';
    out += '{' + std::to_string(ids[i]) + "}:" + std::to_string(j - i) +
           ":1";
    i = j;
  }
  return out;
}

/// Per-core boost clock table — feeds FreqTrace's per-core dip
/// thresholds, so an E-core cruising at its own fmax never counts as a
/// frequency dip against the P-cores' higher clock. On homogeneous
/// machines every entry equals max_ghz() and the statistics are
/// bit-identical to the historical machine-wide threshold.
inline std::vector<double> core_fmax(const topo::Machine& m) {
  std::vector<double> f(m.n_cores());
  for (std::size_t c = 0; c < m.n_cores(); ++c) f[c] = m.core_max_ghz(c);
  return f;
}

/// os ids of the smt_index==`sibling` HW thread of each listed core, in
/// core order (cores lacking that sibling are skipped). sibling=0 gives
/// the ST pool of the cores, sibling=1 the MT companions.
inline std::vector<std::size_t> sibling_ids(
    const topo::Machine& m, const std::vector<std::size_t>& cores,
    std::size_t sibling) {
  std::vector<std::size_t> by_core(m.n_cores(),
                                   static_cast<std::size_t>(-1));
  for (const auto& t : m.threads()) {
    if (t.smt_index == sibling) by_core[t.core] = t.os_id;
  }
  std::vector<std::size_t> out;
  out.reserve(cores.size());
  for (std::size_t c : cores) {
    if (by_core[c] != static_cast<std::size_t>(-1)) {
      out.push_back(by_core[c]);
    }
  }
  return out;
}

/// Standard pinned team config (OMP_PLACES=threads, OMP_PROC_BIND=close).
inline ompsim::TeamConfig pinned_team(std::size_t threads) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.places_spec = "threads";
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

/// Unpinned team (the paper's "before thread-pinning" configuration).
inline ompsim::TeamConfig unpinned_team(std::size_t threads) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.bind = topo::ProcBind::none;
  return cfg;
}

/// Cache-key fingerprint of a team configuration — every TeamConfig field
/// that changes the simulated timings (threads, places, bind, barrier
/// algorithm, the unpinned-placement knobs, and the inter-repetition
/// wall-clock gap).
inline SpecKey& add_team_key(SpecKey& k, const ompsim::TeamConfig& cfg) {
  k.add("threads", cfg.n_threads);
  k.add("places", cfg.places_spec);
  k.add("bind", static_cast<std::uint64_t>(cfg.bind));
  k.add("barrier", static_cast<std::uint64_t>(cfg.barrier_alg));
  k.add("migrate_prob", cfg.placement.migrate_prob);
  k.add("bad_migration_prob", cfg.placement.bad_migration_prob);
  k.add("rescue_prob", cfg.placement.rescue_prob);
  k.add("inter_rep_gap", cfg.inter_rep_gap);
  return k;
}

/// Starts a cache key for one protocol cell: benchmark kind, platform and
/// its scenario fingerprint, team. The fingerprint covers every machine /
/// noise / freq / mem / cost parameter, so cells simulated under one
/// scenario can never satisfy a lookup from another. Append benchmark-
/// specific fields (construct, schedule, chunk, kernel, ...) before
/// passing it to RunContext::protocol.
inline SpecKey cell_key(std::string_view bench_kind, const Platform& p,
                        const ompsim::TeamConfig& team) {
  SpecKey k;
  k.add("bench", bench_kind);
  k.add("platform", p.name);
  k.add("scenario_fp", p.fingerprint);
  add_team_key(k, team);
  return k;
}

/// Prints the standard harness header; in scenario mode a "Scenario:"
/// line (name, fingerprint, geometry) makes the report self-describing.
/// The default paper mode prints exactly the historical header. Routed
/// through ctx.print so the campaign cell scheduler can capture and
/// replay the harness's stdout in order.
inline void header(cli::RunContext& ctx, const std::string& experiment,
                   const std::string& claim) {
  ctx.print("%s", report::banner(experiment).c_str());
  if (const auto* s = ctx.scenario()) {
    ctx.print("Scenario: %s [%s %s] %s\n", s->display.c_str(),
              s->name.c_str(), s->fingerprint().c_str(),
              s->geometry_summary().c_str());
  }
  ctx.print("Paper claim: %s\n\n", claim.c_str());
}

/// Header without scenario context (ad-hoc callers).
inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("%s", report::banner(experiment).c_str());
  std::printf("Paper claim: %s\n\n", claim.c_str());
}

/// Prints the "shape check" verdict line the EXPERIMENTS.md records.
/// Prefer RunContext::verdict (records into the JSON artifact) in harness
/// run functions; this stays for ad-hoc callers.
inline void verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", what.c_str());
}

}  // namespace omv::harness
