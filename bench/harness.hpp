#pragma once
// Shared scaffolding for the paper-reproduction bench harnesses.
//
// Every binary reproduces one table or figure of the paper. Binaries run
// with no arguments using the paper's full protocol (10 runs x 100 outer
// repetitions); set OMNIVAR_QUICK=1 to shrink the protocol for smoke runs,
// or OMNIVAR_RUNS / OMNIVAR_REPS to override explicitly.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "omp_model/team.hpp"
#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace omv::harness {

/// Protocol spec honoring the environment overrides.
inline ExperimentSpec paper_spec(std::uint64_t seed, std::size_t runs = 10,
                                 std::size_t reps = 100) {
  ExperimentSpec spec;
  spec.runs = runs;
  spec.reps = reps;
  spec.warmup = 1;
  spec.seed = seed;
  if (const char* q = std::getenv("OMNIVAR_QUICK"); q && q[0] == '1') {
    spec.runs = std::min<std::size_t>(spec.runs, 3);
    spec.reps = std::min<std::size_t>(spec.reps, 10);
  }
  if (const char* r = std::getenv("OMNIVAR_RUNS")) {
    spec.runs = std::strtoul(r, nullptr, 10);
  }
  if (const char* r = std::getenv("OMNIVAR_REPS")) {
    spec.reps = std::strtoul(r, nullptr, 10);
  }
  return spec;
}

/// The two platforms of the paper.
struct Platform {
  const char* name;
  topo::Machine machine;
  sim::SimConfig config;
};

inline Platform dardel() {
  return {"Dardel", topo::Machine::dardel(), sim::SimConfig::dardel()};
}

inline Platform vera() {
  return {"Vera", topo::Machine::vera(), sim::SimConfig::vera()};
}

/// Standard pinned team config (OMP_PLACES=threads, OMP_PROC_BIND=close).
inline ompsim::TeamConfig pinned_team(std::size_t threads) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.places_spec = "threads";
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

/// Unpinned team (the paper's "before thread-pinning" configuration).
inline ompsim::TeamConfig unpinned_team(std::size_t threads) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.bind = topo::ProcBind::none;
  return cfg;
}

/// Prints the standard harness header.
inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("%s", report::banner(experiment).c_str());
  std::printf("Paper claim: %s\n\n", claim.c_str());
}

/// Prints the "shape check" verdict line the EXPERIMENTS.md records.
inline void verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", what.c_str());
}

}  // namespace omv::harness
