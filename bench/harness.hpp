#pragma once
// Shared scaffolding for the paper-reproduction bench harnesses.
//
// Every binary reproduces one table or figure of the paper. Binaries run
// with no arguments using the paper's full protocol (10 runs x 100 outer
// repetitions); set OMNIVAR_QUICK=1 to shrink the protocol for smoke runs,
// or OMNIVAR_RUNS / OMNIVAR_REPS to override explicitly.
//
// Protocol execution is sharded across worker threads: pass --jobs=N (or
// set OMNIVAR_JOBS=N; 0 = one worker per hardware thread) to run the R
// independent runs of every configuration concurrently. Results are
// bit-identical to the serial default (--jobs=1) because each run derives
// its entire state from its run seed.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"
#include "core/report.hpp"
#include "omp_model/team.hpp"
#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace omv::harness {

/// Mutable process-wide jobs override (set by parse_args; 0 = unset, fall
/// back to the OMNIVAR_JOBS environment variable, then serial).
inline std::size_t& jobs_override() {
  static std::size_t value = 0;
  return value;
}

/// Strictly parses a non-negative integer. Returns false on empty,
/// non-digit, negative, or overflowing input (strtoul alone would happily
/// wrap "-4").
inline bool parse_uint(const char* text, std::size_t& out) {
  if (text == nullptr || *text == '\0') return false;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// Strictly parses a job count ("0" = hardware concurrency) — a typo'd
/// jobs value must not silently become "saturate every core" on a
/// measurement harness.
inline bool parse_job_count(const char* text, std::size_t& out) {
  std::size_t v = 0;
  if (!parse_uint(text, v)) return false;
  out = resolve_jobs(v);
  return true;
}

/// Applies a protocol-count override from the environment: a malformed or
/// zero value warns and leaves `value` unchanged (a typo'd OMNIVAR_RUNS
/// must not silently produce an empty RunMatrix and NaN statistics).
inline void apply_count_env(const char* name, std::size_t& value) {
  const char* text = std::getenv(name);
  if (text == nullptr) return;
  std::size_t v = 0;
  if (parse_uint(text, v) && v > 0) {
    value = v;
  } else {
    // Warn once per variable: paper_spec runs once per swept
    // configuration, and a dozen identical lines would bury real output.
    static std::set<std::string> warned;
    if (warned.insert(name).second) {
      std::fprintf(stderr,
                   "harness: ignoring malformed %s='%s' (expected a "
                   "positive integer)\n",
                   name, text);
    }
  }
}

/// Effective worker count for sharded protocol execution: the --jobs
/// override, else OMNIVAR_JOBS (where 0 means hardware concurrency), else
/// 1 (serial — the paper's original execution model). A malformed
/// OMNIVAR_JOBS is reported once and ignored.
inline std::size_t jobs() {
  if (jobs_override() != 0) return jobs_override();
  if (const char* j = std::getenv("OMNIVAR_JOBS")) {
    std::size_t n = 0;
    if (parse_job_count(j, n)) return n;
    static bool warned = [&] {
      std::fprintf(stderr,
                   "harness: ignoring malformed OMNIVAR_JOBS='%s' "
                   "(expected a non-negative integer); running serial\n",
                   j);
      return true;
    }();
    (void)warned;
  }
  return 1;
}

/// Parses the shared harness flags (currently --jobs=N / --jobs N).
/// Malformed jobs values are reported and ignored; other unrecognized
/// arguments are ignored so harnesses stay zero-config.
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "harness: --jobs requires a value\n");
        continue;
      }
      value = argv[++i];
    } else {
      continue;
    }
    std::size_t n = 0;
    if (parse_job_count(value, n)) {
      jobs_override() = n;
    } else {
      std::fprintf(stderr,
                   "harness: ignoring malformed --jobs value '%s' "
                   "(expected a non-negative integer)\n",
                   value);
    }
  }
}

/// Runs a spec through the ParallelRunner honoring the harness job count;
/// `make_kernel` builds one private kernel per run. This is the generic
/// entry point for ad-hoc kernels that have no Sim* benchmark object —
/// harnesses built on the bench_suite classes go through their
/// run_protocol(..., jobs) overloads instead.
inline RunMatrix run_sharded(const ExperimentSpec& spec,
                             const RunKernelFactory& make_kernel) {
  return run_experiment_parallel(spec, make_kernel, jobs());
}

/// Protocol spec honoring the environment overrides.
inline ExperimentSpec paper_spec(std::uint64_t seed, std::size_t runs = 10,
                                 std::size_t reps = 100) {
  ExperimentSpec spec;
  spec.runs = runs;
  spec.reps = reps;
  spec.warmup = 1;
  spec.seed = seed;
  if (const char* q = std::getenv("OMNIVAR_QUICK"); q && q[0] == '1') {
    spec.runs = std::min<std::size_t>(spec.runs, 3);
    spec.reps = std::min<std::size_t>(spec.reps, 10);
  }
  apply_count_env("OMNIVAR_RUNS", spec.runs);
  apply_count_env("OMNIVAR_REPS", spec.reps);
  return spec;
}

/// The two platforms of the paper.
struct Platform {
  const char* name;
  topo::Machine machine;
  sim::SimConfig config;
};

inline Platform dardel() {
  return {"Dardel", topo::Machine::dardel(), sim::SimConfig::dardel()};
}

inline Platform vera() {
  return {"Vera", topo::Machine::vera(), sim::SimConfig::vera()};
}

/// Standard pinned team config (OMP_PLACES=threads, OMP_PROC_BIND=close).
inline ompsim::TeamConfig pinned_team(std::size_t threads) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.places_spec = "threads";
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

/// Unpinned team (the paper's "before thread-pinning" configuration).
inline ompsim::TeamConfig unpinned_team(std::size_t threads) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.bind = topo::ProcBind::none;
  return cfg;
}

/// Prints the standard harness header.
inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("%s", report::banner(experiment).c_str());
  std::printf("Paper claim: %s\n\n", claim.c_str());
}

/// Prints the "shape check" verdict line the EXPERIMENTS.md records.
inline void verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", what.c_str());
}

}  // namespace omv::harness
