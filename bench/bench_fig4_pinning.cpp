// Figure 4: the effect of thread pinning on Dardel.
//
// Three columns: schedbench at 16 threads, syncbench (reduction) at 128
// threads, BabelStream at 128 threads — each before pinning (OS placement,
// OMP_PROC_BIND unset) and after pinning (OMP_PLACES=threads,
// OMP_PROC_BIND=close).
//
// Paper shapes: pinning removes most run-to-run variability; unpinned
// syncbench spans >3 orders of magnitude between repetitions; unpinned
// BabelStream shows up to ~6x min/max spread across runs; schedbench keeps
// a mild run-level outlier even after pinning (run-scoped frequency cap).

#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"
#include "bench_suite/stream_sim.hpp"
#include "bench_suite/syncbench_sim.hpp"
#include "core/characterize.hpp"
#include "core/stat_tests.hpp"

using namespace omv;

namespace {

void per_run_table(cli::RunContext& ctx, const std::string& slug,
                   const char* title, const RunMatrix& m, int digits = 1) {
  ctx.print("%s\n", title);
  report::Table t({"run #", "mean", "min", "max", "cv"});
  for (std::size_t r = 0; r < m.runs(); ++r) {
    const auto s = m.run_summary(r);
    t.add_row({std::to_string(r + 1), report::fmt_fixed(s.mean, digits),
               report::fmt_fixed(s.min, digits),
               report::fmt_fixed(s.max, digits),
               report::fmt_fixed(s.cv, 4)});
  }
  ctx.table(slug, t);
}

int run_fig4(cli::RunContext& ctx) {
  harness::header(
      ctx, "Figure 4 — lower variability after thread-pinning (Dardel)",
      "pinning reduces run-to-run variability for schedbench@16thr, "
      "removes >3-orders-of-magnitude syncbench@128thr swings, and "
      "shrinks BabelStream@128thr min/max spread (up to 6x unpinned)");

  const auto p = harness::primary(ctx);
  sim::Simulator s(p.machine, p.config);
  // The paper's Dardel stage sizes, derived so any scenario scales them:
  // a small NUMA-local team (16 on Dardel) and an every-core team (128).
  const std::size_t t_sched = std::min(
      std::max<std::size_t>(2, p.machine.n_threads() / 16),
      p.machine.n_threads());
  const std::size_t t_full = harness::full_team(p.machine);
  const std::string ss = std::to_string(t_sched);
  const std::string fs = std::to_string(t_full);

  // (a)/(d) schedbench, 16 threads.
  {
    const auto unpinned = harness::unpinned_team(t_sched);
    const auto pinned = harness::pinned_team(t_sched);
    bench::SimSchedBench before(s, unpinned,
                                bench::EpccParams::schedbench(), 10000);
    const auto spec_b = harness::paper_spec(5001, 10, 20);
    const auto mb = ctx.protocol(
        "sched" + ss + "/unpinned", spec_b,
        harness::cell_key("schedbench", p, unpinned)
            .add("schedule", "dynamic")
            .add("chunk", std::uint64_t{1}),
        [&] {
          return before.run_protocol(ompsim::Schedule::dynamic, 1, spec_b,
                                     ctx.jobs(), ctx.checkpoint());
        });
    bench::SimSchedBench after(s, pinned,
                               bench::EpccParams::schedbench(), 10000);
    const auto spec_a = harness::paper_spec(5002, 10, 20);
    const auto ma = ctx.protocol(
        "sched" + ss + "/pinned", spec_a,
        harness::cell_key("schedbench", p, pinned)
            .add("schedule", "dynamic")
            .add("chunk", std::uint64_t{1}),
        [&] {
          return after.run_protocol(ompsim::Schedule::dynamic, 1, spec_a,
                                    ctx.jobs(), ctx.checkpoint());
        });
    per_run_table(ctx, "sched" + ss + "_unpinned",
                  ("(a) schedbench " + ss + " thr, BEFORE pinning (us):").c_str(), mb);
    per_run_table(ctx, "sched" + ss + "_pinned",
                  ("(d) schedbench " + ss + " thr, AFTER pinning (us):").c_str(), ma);
    ctx.verdict(ma.run_to_run_cv() <= mb.run_to_run_cv(),
                "schedbench: pinning reduces run-to-run variation");
  }

  // (b)/(e) syncbench reduction, 128 threads.
  {
    const auto unpinned = harness::unpinned_team(t_full);
    const auto pinned = harness::pinned_team(t_full);
    bench::SimSyncBench before(s, unpinned);
    const auto spec_b = harness::paper_spec(5003);
    const auto mb = ctx.protocol(
        "sync" + fs + "/unpinned", spec_b,
        harness::cell_key("syncbench", p, unpinned)
            .add("construct", "reduction"),
        [&] {
          return before.run_protocol(bench::SyncConstruct::reduction,
                                     spec_b, ctx.jobs(), ctx.checkpoint());
        });
    bench::SimSyncBench after(s, pinned);
    const auto spec_a = harness::paper_spec(5004);
    const auto ma = ctx.protocol(
        "sync" + fs + "/pinned", spec_a,
        harness::cell_key("syncbench", p, pinned)
            .add("construct", "reduction"),
        [&] {
          return after.run_protocol(bench::SyncConstruct::reduction,
                                    spec_a, ctx.jobs(), ctx.checkpoint());
        });
    per_run_table(ctx, "sync" + fs + "_unpinned",
                  ("(b) syncbench reduction " + fs +
                   " thr, BEFORE pinning (us):").c_str(),
                  mb);
    per_run_table(ctx, "sync" + fs + "_pinned",
                  ("(e) syncbench reduction " + fs +
                   " thr, AFTER pinning (us):").c_str(),
                  ma);
    const auto sb = mb.pooled_summary();
    const auto sa = ma.pooled_summary();
    ctx.print("unpinned rep-time range: %.1f .. %.1f us (%.0fx)\n",
              sb.min, sb.max, sb.max / sb.min);
    ctx.print("pinned rep-time range:   %.1f .. %.1f us (%.1fx)\n\n",
              sa.min, sa.max, sa.max / sa.min);
    ctx.metric("sync" + fs + "_unpinned_max_over_min", sb.max / sb.min);
    ctx.metric("sync" + fs + "_pinned_max_over_min", sa.max / sa.min);
    ctx.verdict(sb.max / sb.min > 100.0,
                "unpinned syncbench spans orders of magnitude");
    ctx.verdict(sa.max / sa.min < 2.0,
                "pinned syncbench variability nearly eliminated");
    const auto bf = stats::brown_forsythe(ma.flatten(), mb.flatten());
    ctx.verdict(bf.significant,
                "variance reduction statistically significant "
                "(Brown-Forsythe p=" +
                    report::fmt(bf.p_value, 4) + ")");
    ctx.print("unpinned signature: %s\n\n",
              characterize(mb).to_string().c_str());
  }

  // (c)/(f) BabelStream, 128 threads: normalized min/max per kernel.
  {
    report::Table t({"kernel", "unpinned nmin", "unpinned nmax",
                     "pinned nmin", "pinned nmax"});
    bool all_tighter = true;
    double worst_unpinned_ratio = 0.0;
    const auto unpinned = harness::unpinned_team(t_full);
    const auto pinned = harness::pinned_team(t_full);
    for (auto k : bench::all_stream_kernels()) {
      bench::SimStream before(s, unpinned);
      const auto spec_b = harness::paper_spec(5005, 10, 50);
      const auto mb = ctx.protocol(
          "stream" + fs + "/unpinned/" + bench::stream_kernel_name(k),
          spec_b,
          harness::cell_key("babelstream", p, unpinned)
              .add("kernel", bench::stream_kernel_name(k)),
          [&] {
            return before.run_protocol(k, spec_b, ctx.jobs(),
                                       ctx.checkpoint());
          });
      bench::SimStream after(s, pinned);
      const auto spec_a = harness::paper_spec(5006, 10, 50);
      const auto ma = ctx.protocol(
          "stream" + fs + "/pinned/" + bench::stream_kernel_name(k),
          spec_a,
          harness::cell_key("babelstream", p, pinned)
              .add("kernel", bench::stream_kernel_name(k)),
          [&] {
            return after.run_protocol(k, spec_a, ctx.jobs(),
                                      ctx.checkpoint());
          });
      double ub_min = 1.0;
      double ub_max = 0.0;
      double pb_min = 1.0;
      double pb_max = 0.0;
      for (std::size_t r = 0; r < mb.runs(); ++r) {
        ub_min = std::min(ub_min, mb.run_norm_min(r));
        ub_max = std::max(ub_max, mb.run_norm_max(r));
        pb_min = std::min(pb_min, ma.run_norm_min(r));
        pb_max = std::max(pb_max, ma.run_norm_max(r));
      }
      worst_unpinned_ratio = std::max(worst_unpinned_ratio, ub_max / ub_min);
      all_tighter &= (pb_max - pb_min) <= (ub_max - ub_min);
      t.add_row({bench::stream_kernel_name(k), report::fmt_fixed(ub_min, 3),
                 report::fmt_fixed(ub_max, 3), report::fmt_fixed(pb_min, 3),
                 report::fmt_fixed(pb_max, 3)});
    }
    ctx.print("(c)/(f) BabelStream %s thr, normalized min/max:\n%s\n",
              fs.c_str(), t.render().c_str());
    ctx.record_table("stream" + fs + "_norm_minmax", t);
    ctx.print("worst unpinned max/min ratio: %.1fx\n", worst_unpinned_ratio);
    ctx.metric("stream" + fs + "_worst_unpinned_ratio", worst_unpinned_ratio);
    ctx.verdict(all_tighter,
                "BabelStream: pinned min/max spread tighter for every "
                "kernel");
  }
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig4", "Figure 4 — lower variability after thread-pinning (Dardel)",
    run_fig4};

}  // namespace
