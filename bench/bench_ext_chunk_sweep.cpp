// Extension: schedbench across schedules and chunk sizes.
//
// Section 4.2 of the paper: "we execute schedbench with three different
// schedules, namely static, dynamic and guided and various different chunk
// sizes, and present the results for specific schedules with the chunk
// size equal to 1". This harness regenerates the full sweep the paper ran
// behind that sentence: mean repetition time and pooled CV per (schedule,
// chunk) on both platforms at a representative thread count.
//
// Expected shapes: dynamic_1 is the most expensive configuration (maximum
// grab traffic); overheads fall as chunks grow; static is flat across
// chunk sizes; guided sits between static and dynamic at chunk 1.

#include <cmath>
#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"

using namespace omv;

namespace {

void run_platform(cli::RunContext& ctx, const harness::Platform& p,
                  std::size_t threads, std::uint64_t seed) {
  sim::Simulator s(p.machine, p.config);
  ctx.print("-- %s, %zu threads --\n", p.name.c_str(), threads);
  report::Table t({"schedule", "chunk", "mean rep (us)", "pooled CV"});
  double static_1 = 0.0;
  double dynamic_1 = 0.0;
  double guided_1 = 0.0;
  double dynamic_128 = 0.0;
  for (auto kind : {ompsim::Schedule::static_, ompsim::Schedule::dynamic,
                    ompsim::Schedule::guided}) {
    for (std::size_t chunk : {1ul, 8ul, 128ul}) {
      const auto team = harness::pinned_team(threads);
      bench::SimSchedBench sb(s, team, bench::EpccParams::schedbench(),
                              10000);
      const auto spec = harness::paper_spec(seed + chunk, 5, 10);
      const auto m = ctx.protocol(
          p.name + "/" + ompsim::schedule_name(kind) + "_" +
              std::to_string(chunk),
          spec,
          harness::cell_key("schedbench", p, team)
              .add("schedule", ompsim::schedule_name(kind))
              .add("chunk", chunk),
          [&] {
            return sb.run_protocol(kind, chunk, spec, ctx.jobs(),
                                   ctx.checkpoint());
          });
      const double mean = m.grand_mean();
      t.add_row({ompsim::schedule_name(kind), std::to_string(chunk),
                 report::fmt_fixed(mean, 1),
                 report::fmt_fixed(m.pooled_summary().cv, 5)});
      if (kind == ompsim::Schedule::static_ && chunk == 1) static_1 = mean;
      if (kind == ompsim::Schedule::dynamic && chunk == 1) dynamic_1 = mean;
      if (kind == ompsim::Schedule::guided && chunk == 1) guided_1 = mean;
      if (kind == ompsim::Schedule::dynamic && chunk == 128) {
        dynamic_128 = mean;
      }
    }
  }
  ctx.table(p.name + "_sweep", t);
  ctx.verdict(dynamic_1 > guided_1 && dynamic_1 > static_1,
              p.name + ": dynamic_1 is the most expensive configuration");
  // Guided's decaying chunks cost little per thread and rebalance noise,
  // so it tracks static within noise (sometimes beating it).
  ctx.verdict(std::abs(guided_1 - static_1) < 0.02 * static_1,
              p.name + ": guided_1 tracks static_1 within 2%");
  ctx.verdict(dynamic_128 < dynamic_1,
              p.name + ": larger chunks shrink dynamic overhead");
}

int run_chunk_sweep(cli::RunContext& ctx) {
  harness::header(
      ctx, "Extension — schedbench schedule x chunk sweep (paper §4.2)",
      "the paper ran static/dynamic/guided with various chunk sizes and "
      "reported chunk=1; this regenerates the full sweep");
  const auto ps = harness::platforms(ctx);
  if (harness::scenario_mode(ctx)) {
    run_platform(ctx, ps[0], harness::full_team(ps[0].machine), 9101);
  } else {
    run_platform(ctx, ps[0], 128, 9101);
    run_platform(ctx, ps[1], 30, 9201);
  }
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "ext_chunk_sweep",
    "Extension — schedbench schedule x chunk sweep (paper §4.2)",
    run_chunk_sweep};

}  // namespace
