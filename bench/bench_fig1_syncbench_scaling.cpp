// Figure 1: syncbench (reduction) execution time when increasing the
// number of HW threads on Dardel (4-254) and Vera (2-30).
//
// Paper shapes: time per construct increases with thread count; a sharp
// jump when the second socket engages (>64 physical cores on Dardel via
// quad-NUMA spillover, >16 cores on Vera) and when SMT siblings engage on
// Dardel (>128 threads); reduction is the most expensive synchronization
// construct.

#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/syncbench_sim.hpp"

using namespace omv;

namespace {

void run_platform(cli::RunContext& ctx, const harness::Platform& p,
                  const std::vector<std::size_t>& counts,
                  std::uint64_t seed) {
  sim::Simulator s(p.machine, p.config);
  ctx.print("-- %s --\n", p.name.c_str());
  report::Series series("threads", {"reduction_us", "barrier_us"});
  double first = 0.0;
  double last = 0.0;
  for (std::size_t t : counts) {
    const auto team = harness::pinned_team(t);
    bench::SimSyncBench sb(s, team);
    const auto spec = harness::paper_spec(seed + t);
    const std::string cell = p.name + "/t" + std::to_string(t) + "/";
    const auto red = ctx.protocol(
        cell + "reduction", spec,
        harness::cell_key("syncbench", p, team)
            .add("construct", "reduction"),
        [&] {
          return sb.run_protocol(bench::SyncConstruct::reduction, spec,
                                 ctx.jobs(), ctx.checkpoint());
        });
    const auto bar = ctx.protocol(
        cell + "barrier", spec,
        harness::cell_key("syncbench", p, team)
            .add("construct", "barrier"),
        [&] {
          return sb.run_protocol(bench::SyncConstruct::barrier, spec,
                                 ctx.jobs(), ctx.checkpoint());
        });
    const double red_per =
        red.grand_mean() /
        static_cast<double>(sb.innerreps(bench::SyncConstruct::reduction));
    const double bar_per =
        bar.grand_mean() /
        static_cast<double>(sb.innerreps(bench::SyncConstruct::barrier));
    series.add(static_cast<double>(t), {red_per, bar_per});
    if (t == counts.front()) first = red_per;
    if (t == counts.back()) last = red_per;
  }
  ctx.series(p.name, series, 3);
  ctx.verdict(last > first,
              p.name + ": reduction time grows with thread count");
}

int run_fig1(cli::RunContext& ctx) {
  harness::header(
      ctx, "Figure 1 — syncbench execution time vs HW threads",
      "time increases with threads; sharp increase crossing the second "
      "socket and engaging SMT (Dardel >128); reduction is the most "
      "time-consuming synchronization micro-benchmark");

  const auto ps = harness::platforms(ctx);
  if (harness::scenario_mode(ctx)) {
    run_platform(ctx, ps[0], harness::thread_ladder(ps[0].machine), 2001);
  } else {
    run_platform(ctx, ps[0], {4, 8, 16, 32, 64, 96, 128, 160, 192, 254},
                 2001);
    run_platform(ctx, ps[1], {2, 4, 8, 12, 16, 20, 24, 28, 30}, 2002);
  }

  // Reduction vs the other constructs at full scale (Dardel by default).
  const auto& p = ps[0];
  sim::Simulator s(p.machine, p.config);
  bench::SimSyncBench sb(s,
                         harness::pinned_team(harness::full_team(p.machine)));
  report::Table t({"construct", "ideal instance (us)"});
  double reduction_cost = 0.0;
  double worst_other = 0.0;
  for (auto c : bench::all_sync_constructs()) {
    const double us = sb.ideal_instance_us(c);
    t.add_row({bench::sync_construct_name(c), report::fmt_fixed(us, 3)});
    if (c == bench::SyncConstruct::reduction) {
      reduction_cost = us;
    } else if (c != bench::SyncConstruct::critical &&
               c != bench::SyncConstruct::lock &&
               c != bench::SyncConstruct::ordered) {
      worst_other = std::max(worst_other, us);
    }
  }
  ctx.table("construct_cost_dardel128", t);
  ctx.verdict(reduction_cost > worst_other,
              "reduction is the most expensive team-wide construct");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig1", "Figure 1 — syncbench execution time vs HW threads", run_fig1};

}  // namespace
