// Figure 7: higher execution time in the syncbench (reduction)
// micro-benchmark due to frequency variation on Vera — the syncbench
// mirror of Figure 6.
//
// Paper shapes: the cross-NUMA placement exhibits more variation both
// run-to-run and within the 100 repetitions of a single run, matching the
// grey sub-fmax regions of its frequency trace.

#include "bench/freq_panel.hpp"
#include "bench/harness.hpp"
#include "bench_suite/syncbench_sim.hpp"
#include "freqlog/logger.hpp"

using namespace omv;

namespace {

using PanelResult = harness::FreqPanelResult;

PanelResult run_panel(cli::RunContext& ctx, const std::string& label,
                      sim::Simulator& s, const std::string& places,
                      std::uint64_t seed) {
  SpecKey key;
  key.add("bench", "syncbench_freq_panel");
  key.add("platform", "Vera:dippy");
  key.add("construct", "reduction");
  return harness::run_freq_panel_cached(
      ctx, label, std::move(key), s, places, harness::paper_spec(seed),
      [](sim::Simulator& sim, const ompsim::TeamConfig& cfg) {
        return bench::SimSyncBench(sim, cfg);
      },
      [](bench::SimSyncBench& sb, ompsim::SimTeam& team) {
        return sb.rep_time_us(team, bench::SyncConstruct::reduction);
      });
}

int run_fig7(cli::RunContext& ctx) {
  harness::header(
      "Figure 7 — syncbench (reduction) and frequency variation (Vera)",
      "16 cores across two NUMA nodes show more run-to-run and "
      "within-run variation than 16 cores of one node, coinciding with "
      "sub-fmax frequency episodes");

  auto p = harness::vera();
  p.config.freq = sim::FreqConfig::vera_dippy();
  sim::Simulator s(p.machine, p.config);
  const double fmax = p.machine.max_ghz();

  const auto one = run_panel(ctx, "one_numa", s, "{0}:16:1", 8001);
  const auto two = run_panel(ctx, "two_numa", s, "{0}:8:1,{16}:8:1", 8002);

  report::Table t({"placement", "grand mean (us)", "pooled CV",
                   "run-to-run CV", "% samples < 0.95 fmax",
                   "dip episodes"});
  const auto add = [&](const char* name, const PanelResult& r) {
    t.add_row({name, report::fmt_fixed(r.matrix.grand_mean(), 2),
               report::fmt_fixed(r.matrix.pooled_summary().cv, 5),
               report::fmt_fixed(r.matrix.run_to_run_cv(), 5),
               report::fmt_pct(r.trace.fraction_below(fmax, 0.95), 2),
               std::to_string(r.trace.episode_count(fmax, 0.95))});
  };
  add("one NUMA node (cores 0-15)", one);
  add("two NUMA nodes (8+8)", two);
  ctx.table("placement_comparison", t);

  ctx.verdict(two.matrix.grand_mean() > one.matrix.grand_mean(),
              "cross-NUMA reduction is slower (socket-step barrier + "
              "frequency dips)");
  ctx.verdict(two.matrix.pooled_summary().cv >
                  one.matrix.pooled_summary().cv,
              "cross-NUMA reduction shows more variation");
  ctx.verdict(two.trace.fraction_below(fmax, 0.95) >
                  one.trace.fraction_below(fmax, 0.95),
              "frequency trace confirms more dips cross-NUMA");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig7", "Figure 7 — syncbench (reduction) and frequency variation (Vera)",
    run_fig7};

}  // namespace
