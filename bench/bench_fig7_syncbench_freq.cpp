// Figure 7: higher execution time in the syncbench (reduction)
// micro-benchmark due to frequency variation on Vera — the syncbench
// mirror of Figure 6.
//
// Paper shapes: the cross-NUMA placement exhibits more variation both
// run-to-run and within the 100 repetitions of a single run, matching the
// grey sub-fmax regions of its frequency trace.

#include "bench/freq_panel.hpp"
#include "bench/harness.hpp"
#include "bench_suite/syncbench_sim.hpp"
#include "freqlog/logger.hpp"

using namespace omv;

namespace {

using PanelResult = harness::FreqPanelResult;

PanelResult run_panel(cli::RunContext& ctx, const harness::Platform& p,
                      const std::string& label, sim::Simulator& s,
                      const std::string& places, std::size_t threads,
                      std::uint64_t seed) {
  SpecKey key;
  key.add("bench", "syncbench_freq_panel");
  key.add("platform", p.name + ":dippy");
  key.add("scenario_fp", p.fingerprint);
  key.add("construct", "reduction");
  return harness::run_freq_panel_cached(
      ctx, label, std::move(key), s, places, threads,
      harness::paper_spec(seed),
      [](sim::Simulator& sim, const ompsim::TeamConfig& cfg) {
        return bench::SimSyncBench(sim, cfg);
      },
      [](bench::SimSyncBench& sb, ompsim::SimTeam& team) {
        return sb.rep_time_us(team, bench::SyncConstruct::reduction);
      });
}

int run_fig7(cli::RunContext& ctx) {
  harness::header(
      ctx,
      "Figure 7 — syncbench (reduction) and frequency variation (Vera)",
      "16 cores across two NUMA nodes show more run-to-run and "
      "within-run variation than 16 cores of one node, coinciding with "
      "sub-fmax frequency episodes");

  const auto p = harness::freq_session_platform(ctx);
  const auto geo = harness::freq_panel_geometry(p);
  if (!geo.applicable) {
    ctx.print("%s\n", geo.reason.c_str());
    return 0;
  }
  sim::Simulator s(p.machine, p.config);
  const std::vector<double> fmax = harness::core_fmax(p.machine);

  const auto one =
      run_panel(ctx, p, "one_numa", s, geo.one_places, geo.threads, 8001);
  const auto two =
      run_panel(ctx, p, "two_numa", s, geo.two_places, geo.threads, 8002);

  report::Table t({"placement", "grand mean (us)", "pooled CV",
                   "run-to-run CV", "% samples < 0.95 fmax",
                   "dip episodes"});
  const auto add = [&](const char* name, const PanelResult& r) {
    t.add_row({name, report::fmt_fixed(r.matrix.grand_mean(), 2),
               report::fmt_fixed(r.matrix.pooled_summary().cv, 5),
               report::fmt_fixed(r.matrix.run_to_run_cv(), 5),
               report::fmt_pct(r.trace.fraction_below(fmax, 0.95), 2),
               std::to_string(r.trace.episode_count(fmax, 0.95))});
  };
  const std::string one_label =
      "one NUMA node (cores 0-" + std::to_string(geo.threads - 1) + ")";
  const std::string two_label =
      "two NUMA nodes (" + std::to_string(geo.threads / 2) + "+" +
      std::to_string(geo.threads / 2) + ")";
  add(one_label.c_str(), one);
  add(two_label.c_str(), two);
  ctx.table("placement_comparison", t);

  ctx.verdict(two.matrix.grand_mean() > one.matrix.grand_mean(),
              "cross-NUMA reduction is slower (socket-step barrier + "
              "frequency dips)");
  ctx.verdict(two.matrix.pooled_summary().cv >
                  one.matrix.pooled_summary().cv,
              "cross-NUMA reduction shows more variation");
  ctx.verdict(two.trace.fraction_below(fmax, 0.95) >
                  one.trace.fraction_below(fmax, 0.95),
              "frequency trace confirms more dips cross-NUMA");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig7", "Figure 7 — syncbench (reduction) and frequency variation (Vera)",
    run_fig7};

}  // namespace
