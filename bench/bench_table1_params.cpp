// Table 1: parameters of the EPCC OpenMP micro-benchmarks.
//
// Echoes the effective configuration (outer repetitions, delay time, test
// time, itersperthr) and demonstrates the innerreps calibration these
// parameters drive on both platforms.

#include "bench/harness.hpp"
#include "bench_suite/syncbench_sim.hpp"

using namespace omv;

namespace {

int run_table1(cli::RunContext& ctx) {
  harness::header(ctx, "Table 1 — EPCC micro-benchmark parameters",
                  "schedbench: 100 reps, 15us delay, 1000us test time, "
                  "8192 itersperthr; syncbench: 100 reps, 0.1us delay, "
                  "1000us test time");

  const auto sched = bench::EpccParams::schedbench();
  const auto sync = bench::EpccParams::syncbench();

  report::Table t({"parameter", "schedbench", "syncbench"});
  t.add_row({"outer repetitions", std::to_string(sched.outer_reps),
             std::to_string(sync.outer_reps)});
  t.add_row({"delay time (us)", report::fmt_fixed(sched.delay_us, 1),
             report::fmt_fixed(sync.delay_us, 1)});
  t.add_row({"test time (us)", report::fmt_fixed(sched.test_time_us, 0),
             report::fmt_fixed(sync.test_time_us, 0)});
  t.add_row({"itersperthr", std::to_string(sched.itersperthr), "-"});
  ctx.table("epcc_parameters", t);

  // Show what the test-time calibration yields for the reduction construct
  // at representative scales (the innerreps EPCC would pick).
  report::Table cal({"platform", "threads", "ideal instance (us)",
                     "calibrated innerreps"});
  for (const auto& p : harness::platforms(ctx)) {
    sim::Simulator s(p.machine, p.config);
    for (std::size_t threads :
         {std::min<std::size_t>(4, p.machine.n_threads()),
          harness::spare2_team(p.machine)}) {
      bench::SimSyncBench sb(s, harness::pinned_team(threads), sync);
      const double inst =
          sb.ideal_instance_us(bench::SyncConstruct::reduction);
      cal.add_row({p.name, std::to_string(threads),
                   report::fmt_fixed(inst, 2),
                   std::to_string(sb.innerreps(
                       bench::SyncConstruct::reduction))});
    }
  }
  ctx.table("innerreps_calibration", cal);

  ctx.verdict(sched.outer_reps == 100 && sync.delay_us == 0.1,
              "Table 1 parameters wired through the EPCC protocol");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "table1", "Table 1 — EPCC micro-benchmark parameters", run_table1};

}  // namespace
