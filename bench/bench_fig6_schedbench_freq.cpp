// Figure 6: higher variability of schedbench execution time due to
// frequency variation on Vera.
//
// Four panels: (a) 16 cores from one NUMA node, (b) its frequency trace,
// (c) 16 cores across two NUMA nodes, (d) its frequency trace. The
// frequency logger runs "on a separate core" — here, sampling the
// simulator's frequency model along the same simulated timeline.
//
// Paper shapes: the cross-NUMA placement shows higher variability (both
// run-to-run and across the 100 repetitions), and its frequency trace
// shows far more sub-fmax episodes (the "brown region").

#include "bench/freq_panel.hpp"
#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"
#include "freqlog/logger.hpp"

using namespace omv;

namespace {

using PanelResult = harness::FreqPanelResult;

PanelResult run_panel(cli::RunContext& ctx, const harness::Platform& p,
                      const std::string& label, sim::Simulator& s,
                      const std::string& places, std::size_t threads,
                      std::uint64_t seed) {
  SpecKey key;
  key.add("bench", "schedbench_freq_panel");
  key.add("platform", p.name + ":dippy");
  key.add("scenario_fp", p.fingerprint);
  return harness::run_freq_panel_cached(
      ctx, label, std::move(key), s, places, threads,
      harness::paper_spec(seed, 10, 20),
      [](sim::Simulator& sim, const ompsim::TeamConfig& cfg) {
        return bench::SimSchedBench(sim, cfg,
                                    bench::EpccParams::schedbench(), 10000);
      },
      [](bench::SimSchedBench& sb, ompsim::SimTeam& team) {
        return sb.rep_time_us(team, ompsim::Schedule::static_, 1);
      });
}

void report_panel(cli::RunContext& ctx, const std::string& slug,
                  const char* label, const PanelResult& r,
                  const std::vector<double>& fmax) {
  ctx.print("%s\n", label);
  report::Table t({"run #", "mean (us)", "min (us)", "max (us)", "cv"});
  for (std::size_t i = 0; i < r.matrix.runs(); ++i) {
    const auto s = r.matrix.run_summary(i);
    t.add_row({std::to_string(i + 1), report::fmt_fixed(s.mean, 1),
               report::fmt_fixed(s.min, 1), report::fmt_fixed(s.max, 1),
               report::fmt_fixed(s.cv, 4)});
  }
  ctx.print("%s", t.render().c_str());
  ctx.record_table(slug, t);
  const auto e = r.trace.extremes();
  // Both are O(samples) scans over the merged trace — compute once.
  const double below = r.trace.fraction_below(fmax, 0.95);
  const std::size_t episodes = r.trace.episode_count(fmax, 0.95);
  ctx.print(
      "frequency trace: %zu samples, min %.2f / mean %.2f / max %.2f GHz, "
      "%.1f%% below 0.95*fmax, %zu dip episodes\n\n",
      r.trace.size(), e.min, e.mean, e.max, below * 100.0, episodes);
  ctx.metric(slug + "_below_fmax_fraction", below);
  ctx.metric(slug + "_dip_episodes", static_cast<double>(episodes));
}

int run_fig6(cli::RunContext& ctx) {
  harness::header(
      ctx,
      "Figure 6 — schedbench variability from frequency variation (Vera)",
      "cross-NUMA placement shows higher execution-time variability and a "
      "frequency trace with many more sub-fmax episodes than the "
      "single-NUMA placement");

  // The active-DVFS session on the scenario platform (the paper measured
  // a dippy Vera session).
  const auto p = harness::freq_session_platform(ctx);
  const auto geo = harness::freq_panel_geometry(p);
  if (!geo.applicable) {
    ctx.print("%s\n", geo.reason.c_str());
    return 0;
  }
  sim::Simulator s(p.machine, p.config);
  const std::vector<double> fmax = harness::core_fmax(p.machine);

  const auto one_numa =
      run_panel(ctx, p, "one_numa", s, geo.one_places, geo.threads, 7001);
  const auto two_numa =
      run_panel(ctx, p, "two_numa", s, geo.two_places, geo.threads, 7002);

  report_panel(ctx, "one_numa",
               ("(a)+(b) " + std::to_string(geo.threads) +
                " cores from ONE NUMA node:")
                   .c_str(),
               one_numa, fmax);
  report_panel(ctx, "two_numa",
               ("(c)+(d) " + std::to_string(geo.threads) +
                " cores from TWO NUMA nodes:")
                   .c_str(),
               two_numa, fmax);

  ctx.verdict(two_numa.matrix.pooled_summary().cv >
                  one_numa.matrix.pooled_summary().cv,
              "cross-NUMA placement has higher execution-time CV");
  ctx.verdict(two_numa.trace.fraction_below(fmax, 0.95) >
                  one_numa.trace.fraction_below(fmax, 0.95),
              "cross-NUMA frequency trace shows a larger sub-fmax "
              "region (the paper's brown region)");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig6",
    "Figure 6 — schedbench variability from frequency variation (Vera)",
    run_fig6};

}  // namespace
