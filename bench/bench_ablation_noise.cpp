// Ablation bench: attributes each variability signature to the simulator
// mechanism that produces it, by toggling one mechanism at a time on the
// Fig. 4 workload (syncbench reduction, 128 Dardel threads).
//
// This backs DESIGN.md's marked design decisions: the unpinned heavy tail
// comes from oversubscription scheduling stalls, the pinned run-level
// outliers from the run-scoped frequency cap, the residual jitter from
// daemons/ticks, and the barrier algorithm choice moves the absolute sync
// cost but not the variability structure.

#include "bench/harness.hpp"
#include "bench_suite/syncbench_sim.hpp"
#include "core/characterize.hpp"

using namespace omv;

namespace {

struct Row {
  std::string name;
  double mean;
  double cv;
  double max_over_min;
  double run_spread;
  std::string signature;
};

Row run_case(cli::RunContext& ctx, const harness::Platform& p,
             const std::string& name, const sim::SimConfig& cfg,
             const ompsim::TeamConfig& team, std::uint64_t seed) {
  sim::Simulator s(p.machine, cfg);
  bench::SimSyncBench sb(s, team);
  const auto spec = harness::paper_spec(seed, 8, 40);
  // The config variants are one-knob toggles of the named case, so the
  // case name (on top of the scenario fingerprint of the base bundle) is
  // the honest fingerprint of `cfg`.
  const auto m = ctx.protocol(
      name, spec,
      harness::cell_key("syncbench", p, team)
          .add("construct", "reduction")
          .add("ablation_case", name),
      [&] {
        return sb.run_protocol(bench::SyncConstruct::reduction, spec,
                               ctx.jobs(), ctx.checkpoint());
      });
  const auto ps = m.pooled_summary();
  return {name,
          ps.mean,
          ps.cv,
          ps.min > 0.0 ? ps.max / ps.min : 0.0,
          m.run_mean_spread(),
          characterize(m).to_string()};
}

int run_ablation(cli::RunContext& ctx) {
  harness::header(
      ctx,
      "Ablation — which mechanism produces which variability signature",
      "(not a paper experiment; backs the design decisions in DESIGN.md)");

  std::vector<Row> rows;

  const auto p = harness::primary(ctx);
  const auto full = p.config;
  const std::size_t threads = harness::full_team(p.machine);
  const auto pinned = harness::pinned_team(threads);
  const auto unpinned = harness::unpinned_team(threads);

  rows.push_back(
      run_case(ctx, p, "pinned, full model", full, pinned, 9001));
  rows.push_back(
      run_case(ctx, p, "unpinned, full model", full, unpinned, 9001));

  {
    auto cfg = full;
    cfg.costs.oversub_stall_mean = 0.0;  // no scheduler stalls
    rows.push_back(run_case(ctx, p, "unpinned, no oversub stalls", cfg,
                            unpinned, 9001));
  }
  {
    auto cfg = full;
    cfg.freq.run_cap_prob = 0.0;  // no run-scoped frequency cap
    rows.push_back(
        run_case(ctx, p, "pinned, no run cap", cfg, pinned, 9001));
  }
  {
    auto cfg = full;
    cfg.noise = sim::NoiseConfig::quiet();  // no OS noise at all
    rows.push_back(
        run_case(ctx, p, "pinned, no OS noise", cfg, pinned, 9001));
  }
  {
    auto cfg = full;
    cfg.noise.degrade_prob = 0.0;  // no degraded runs
    rows.push_back(
        run_case(ctx, p, "pinned, no degraded runs", cfg, pinned, 9001));
  }
  {
    auto team = pinned;
    team.barrier_alg = ompsim::BarrierAlgorithm::centralized;
    rows.push_back(
        run_case(ctx, p, "pinned, centralized barrier", full, team, 9001));
  }

  report::Table t({"configuration", "mean (us)", "pooled CV", "max/min",
                   "run spread", "signature"});
  for (const auto& r : rows) {
    t.add_row({r.name, report::fmt_fixed(r.mean, 1),
               report::fmt_fixed(r.cv, 5), report::fmt_fixed(r.max_over_min, 1),
               report::fmt_fixed(r.run_spread, 4), r.signature});
  }
  ctx.table("ablation_matrix", t);

  ctx.verdict(rows[2].max_over_min < rows[1].max_over_min / 5.0,
              "removing oversubscription stalls collapses the unpinned "
              "heavy tail => stalls are the orders-of-magnitude "
              "mechanism");
  ctx.verdict(rows[4].cv <= rows[0].cv,
              "removing OS noise does not increase pinned jitter");
  ctx.verdict(rows[6].mean > rows[0].mean,
              "centralized barrier costs more than the tree at " +
                  std::to_string(threads) +
                  " threads (why runtimes use trees)");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "ablation_noise",
    "Ablation — which simulator mechanism produces which variability "
    "signature",
    run_ablation};

}  // namespace
