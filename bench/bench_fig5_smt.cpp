// Figure 5: the effect of SMT on Dardel.
//
// ST configuration: one HW thread per physical core (the sibling is left
// idle for OS activities). MT configuration: both HW threads of half the
// cores. Same OpenMP thread count in both cases.
//
// Columns: schedbench at 128 threads, syncbench at 32 threads (per-run CV
// per construct), BabelStream at 128 threads.
//
// Paper shapes: MT shows much higher variability (within-run and
// run-to-run) for schedbench and syncbench (for/single/ordered/reduction
// worst); BabelStream does not benefit from SMT; at small thread counts
// ST does not outperform MT much for BabelStream.

#include <algorithm>
#include <string>

#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"
#include "bench_suite/stream_sim.hpp"
#include "bench_suite/syncbench_sim.hpp"

using namespace omv;

namespace {

// Teams are laid out over the *SMT-eligible* core pool (cores with >= 2
// HW threads) — the whole machine on the paper platforms, the P-cluster
// on a big.LITTLE part. ST: first siblings of the first `n` eligible
// cores. MT: both siblings of the first n/2. On symmetric machines the
// compressed places specs reproduce the historical strings ("{0}:n:1" /
// "{0}:k:1,{128}:k:1" on Dardel — second siblings start at n_cores under
// its Linux numbering) byte for byte.
ompsim::TeamConfig st_team(const topo::Machine& m,
                           const std::vector<std::size_t>& eligible,
                           std::size_t n) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = n;
  const std::vector<std::size_t> cores(eligible.begin(),
                                       eligible.begin() +
                                           static_cast<std::ptrdiff_t>(n));
  cfg.places_spec = harness::places_for_ids(harness::sibling_ids(m, cores, 0));
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

ompsim::TeamConfig mt_team(const topo::Machine& m,
                           const std::vector<std::size_t>& eligible,
                           std::size_t n) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = n;
  const std::vector<std::size_t> cores(
      eligible.begin(),
      eligible.begin() + static_cast<std::ptrdiff_t>(n / 2));
  std::vector<std::size_t> ids = harness::sibling_ids(m, cores, 0);
  const std::vector<std::size_t> second = harness::sibling_ids(m, cores, 1);
  ids.insert(ids.end(), second.begin(), second.end());
  cfg.places_spec = harness::places_for_ids(ids);
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

int run_fig5(cli::RunContext& ctx) {
  harness::header(
      ctx, "Figure 5 — higher variability due to SMT (Dardel)",
      "MT (both HW threads of each core) is much noisier than ST (one HW "
      "thread per core, sibling free for the OS) at equal thread counts; "
      "BabelStream does not benefit from SMT");

  const auto p = harness::primary(ctx);
  if (p.machine.max_smt_per_core() < 2) {
    // The ST/MT contrast needs hyperthreads; a no-SMT scenario has no MT
    // configuration to measure. (Per-core query: the retired floor-average
    // smt_per_core() reported "no SMT" for any machine whose SMT cores
    // were outnumbered by non-SMT ones.)
    ctx.print("scenario '%s' has no SMT (1 HW thread per core); the "
              "ST-vs-MT contrast does not apply.\n",
              p.name.c_str());
    return 0;
  }
  sim::Simulator s(p.machine, p.config);
  // Stage sizes derived from the SMT-eligible core pool (every core on
  // the paper platforms — Dardel: 128 / 32 / 8 — only the SMT-capable
  // cluster on mixed-SMT machines).
  const auto eligible = p.machine.cores_with_smt(2);
  const std::size_t n_elig = eligible.size();
  const std::size_t t_full = 2 * (n_elig / 2);
  if (t_full < 4 || n_elig < 2) {
    ctx.print("scenario '%s' is too small for the ST/MT split (%zu "
              "SMT-capable cores); the contrast does not apply.\n",
              p.name.c_str(), n_elig);
    return 0;
  }
  const std::size_t t_sync =
      std::min(2 * std::max<std::size_t>(2, n_elig / 8), t_full);
  const std::size_t t_small = 2 * std::max<std::size_t>(1, n_elig / 32);
  const std::string fsn = std::to_string(t_full);
  const std::string syn = std::to_string(t_sync);
  const std::string smn = std::to_string(t_small);

  const auto sched_cell = [&](const char* label,
                              const ompsim::TeamConfig& team,
                              const ExperimentSpec& spec) {
    bench::SimSchedBench sb(s, team, bench::EpccParams::schedbench(),
                            10000);
    return ctx.protocol(
        label, spec,
        harness::cell_key("schedbench", p, team)
            .add("schedule", "dynamic")
            .add("chunk", std::uint64_t{1}),
        [&] {
          return sb.run_protocol(ompsim::Schedule::dynamic, 1, spec,
                                 ctx.jobs(), ctx.checkpoint());
        });
  };
  const auto stream_cell = [&](const std::string& label,
                               const ompsim::TeamConfig& team,
                               const ExperimentSpec& spec) {
    bench::SimStream st(s, team);
    return ctx.protocol(
        label, spec,
        harness::cell_key("babelstream", p, team)
            .add("kernel", "triad"),
        [&] {
          return st.run_protocol(bench::StreamKernel::triad, spec,
                                 ctx.jobs(), ctx.checkpoint());
        });
  };

  // (a)/(d) schedbench, 128 threads.
  {
    const auto ms = sched_cell(("sched" + fsn + "/st").c_str(),
                               st_team(p.machine, eligible, t_full),
                               harness::paper_spec(6001, 10, 20));
    const auto mm = sched_cell(("sched" + fsn + "/mt").c_str(),
                               mt_team(p.machine, eligible, t_full),
                               harness::paper_spec(6002, 10, 20));
    report::Table t({"config", "grand mean (us)", "pooled CV",
                     "worst run CV"});
    auto worst_cv = [](const RunMatrix& m) {
      double w = 0.0;
      for (std::size_t r = 0; r < m.runs(); ++r) {
        w = std::max(w, m.run_cv(r));
      }
      return w;
    };
    t.add_row({"ST " + fsn + "thr", report::fmt_fixed(ms.grand_mean(), 1),
               report::fmt_fixed(ms.pooled_summary().cv, 5),
               report::fmt_fixed(worst_cv(ms), 5)});
    t.add_row({"MT " + fsn + "thr", report::fmt_fixed(mm.grand_mean(), 1),
               report::fmt_fixed(mm.pooled_summary().cv, 5),
               report::fmt_fixed(worst_cv(mm), 5)});
    ctx.print("(a)/(d) schedbench %s threads:\n%s\n", fsn.c_str(),
              t.render().c_str());
    ctx.record_table("sched" + fsn + "_st_vs_mt", t);
    ctx.verdict(mm.pooled_summary().cv > ms.pooled_summary().cv,
                "schedbench: MT repetitions far more variable than ST");
  }

  // (b)/(e) syncbench, 32 threads: CV per run for each construct.
  {
    report::Table t({"construct", "ST mean CV", "MT mean CV",
                     "ST worst CV", "MT worst CV"});
    bool mt_noisier_everywhere = true;
    for (auto c : bench::all_sync_constructs()) {
      const auto run_sync = [&](const char* mode,
                                const ompsim::TeamConfig& team,
                                const ExperimentSpec& spec) {
        bench::SimSyncBench sb(s, team);
        return ctx.protocol(
            "sync" + syn + "/" + mode + "/" +
                bench::sync_construct_name(c),
            spec,
            harness::cell_key("syncbench", p, team)
                .add("construct", bench::sync_construct_name(c)),
            [&] {
              return sb.run_protocol(c, spec, ctx.jobs(),
                                     ctx.checkpoint());
            });
      };
      const auto ms =
          run_sync("st", st_team(p.machine, eligible, t_sync), harness::paper_spec(6003));
      const auto mm = run_sync("mt", mt_team(p.machine, eligible, t_sync),
                               harness::paper_spec(6004));
      const auto cv_stats_s = stats::summarize(ms.run_cvs());
      const auto cv_stats_m = stats::summarize(mm.run_cvs());
      t.add_row({bench::sync_construct_name(c),
                 report::fmt_fixed(cv_stats_s.mean, 5),
                 report::fmt_fixed(cv_stats_m.mean, 5),
                 report::fmt_fixed(cv_stats_s.max, 5),
                 report::fmt_fixed(cv_stats_m.max, 5)});
      if (c == bench::SyncConstruct::for_ ||
          c == bench::SyncConstruct::single ||
          c == bench::SyncConstruct::ordered ||
          c == bench::SyncConstruct::reduction) {
        mt_noisier_everywhere &= cv_stats_m.mean > cv_stats_s.mean;
      }
    }
    ctx.print("(b)/(e) syncbench %s threads, per-run CV:\n%s\n",
              syn.c_str(), t.render().c_str());
    ctx.record_table("sync" + syn + "_cv_per_construct", t);
    ctx.verdict(mt_noisier_everywhere,
                "syncbench: MT CV higher for for/single/ordered/"
                "reduction");
  }

  // (c)/(f) BabelStream, 128 threads and the small-scale comparison.
  {
    const auto ms = stream_cell("stream" + fsn + "/st", st_team(p.machine, eligible, t_full),
                                harness::paper_spec(6005, 10, 50));
    const auto mm =
        stream_cell("stream" + fsn + "/mt", mt_team(p.machine, eligible, t_full),
                    harness::paper_spec(6006, 10, 50));
    ctx.print(
        "(c)/(f) BabelStream triad %s threads: ST %.3f ms (CV %.4f) vs "
        "MT %.3f ms (CV %.4f)\n",
        fsn.c_str(), ms.grand_mean(), ms.pooled_summary().cv,
        mm.grand_mean(), mm.pooled_summary().cv);
    ctx.metric("stream" + fsn + "_st_ms", ms.grand_mean());
    ctx.metric("stream" + fsn + "_mt_ms", mm.grand_mean());
    ctx.verdict(mm.grand_mean() >= ms.grand_mean() * 0.95,
                "BabelStream does not benefit from using SMT");

    const auto ms8 = stream_cell("stream" + smn + "/st", st_team(p.machine, eligible, t_small),
                                 harness::paper_spec(6007, 10, 50));
    const auto mm8 =
        stream_cell("stream" + smn + "/mt", mt_team(p.machine, eligible, t_small),
                    harness::paper_spec(6008, 10, 50));
    ctx.print("BabelStream triad %s threads: ST %.3f ms vs MT %.3f ms\n",
              smn.c_str(), ms8.grand_mean(), mm8.grand_mean());
    ctx.verdict(mm8.grand_mean() / ms8.grand_mean() < 1.5,
                "at small scale ST does not outperform MT much");
  }
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig5", "Figure 5 — higher variability due to SMT (Dardel)", run_fig5};

}  // namespace
