// Figure 5: the effect of SMT on Dardel.
//
// ST configuration: one HW thread per physical core (the sibling is left
// idle for OS activities). MT configuration: both HW threads of half the
// cores. Same OpenMP thread count in both cases.
//
// Columns: schedbench at 128 threads, syncbench at 32 threads (per-run CV
// per construct), BabelStream at 128 threads.
//
// Paper shapes: MT shows much higher variability (within-run and
// run-to-run) for schedbench and syncbench (for/single/ordered/reduction
// worst); BabelStream does not benefit from SMT; at small thread counts
// ST does not outperform MT much for BabelStream.

#include <string>

#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"
#include "bench_suite/stream_sim.hpp"
#include "bench_suite/syncbench_sim.hpp"

using namespace omv;

namespace {

// ST: first siblings of `n` cores. MT: both siblings of n/2 cores.
ompsim::TeamConfig st_team(std::size_t n) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = n;
  cfg.places_spec = "{0}:" + std::to_string(n) + ":1";
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

ompsim::TeamConfig mt_team(std::size_t n) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = n;
  cfg.places_spec = "{0}:" + std::to_string(n / 2) + ":1,{128}:" +
                    std::to_string(n / 2) + ":1";
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

int run_fig5(cli::RunContext& ctx) {
  harness::header(
      "Figure 5 — higher variability due to SMT (Dardel)",
      "MT (both HW threads of each core) is much noisier than ST (one HW "
      "thread per core, sibling free for the OS) at equal thread counts; "
      "BabelStream does not benefit from SMT");

  auto p = harness::dardel();
  sim::Simulator s(p.machine, p.config);

  const auto sched_cell = [&](const char* label,
                              const ompsim::TeamConfig& team,
                              const ExperimentSpec& spec) {
    bench::SimSchedBench sb(s, team, bench::EpccParams::schedbench(),
                            10000);
    return ctx.protocol(
        label, spec,
        harness::cell_key("schedbench", p.name, team)
            .add("schedule", "dynamic")
            .add("chunk", std::uint64_t{1}),
        [&] {
          return sb.run_protocol(ompsim::Schedule::dynamic, 1, spec,
                                 ctx.jobs());
        });
  };
  const auto stream_cell = [&](const std::string& label,
                               const ompsim::TeamConfig& team,
                               const ExperimentSpec& spec) {
    bench::SimStream st(s, team);
    return ctx.protocol(
        label, spec,
        harness::cell_key("babelstream", p.name, team)
            .add("kernel", "triad"),
        [&] {
          return st.run_protocol(bench::StreamKernel::triad, spec,
                                 ctx.jobs());
        });
  };

  // (a)/(d) schedbench, 128 threads.
  {
    const auto ms =
        sched_cell("sched128/st", st_team(128), harness::paper_spec(6001, 10, 20));
    const auto mm =
        sched_cell("sched128/mt", mt_team(128), harness::paper_spec(6002, 10, 20));
    report::Table t({"config", "grand mean (us)", "pooled CV",
                     "worst run CV"});
    auto worst_cv = [](const RunMatrix& m) {
      double w = 0.0;
      for (std::size_t r = 0; r < m.runs(); ++r) {
        w = std::max(w, m.run_cv(r));
      }
      return w;
    };
    t.add_row({"ST 128thr", report::fmt_fixed(ms.grand_mean(), 1),
               report::fmt_fixed(ms.pooled_summary().cv, 5),
               report::fmt_fixed(worst_cv(ms), 5)});
    t.add_row({"MT 128thr", report::fmt_fixed(mm.grand_mean(), 1),
               report::fmt_fixed(mm.pooled_summary().cv, 5),
               report::fmt_fixed(worst_cv(mm), 5)});
    std::printf("(a)/(d) schedbench 128 threads:\n%s\n", t.render().c_str());
    ctx.record_table("sched128_st_vs_mt", t);
    ctx.verdict(mm.pooled_summary().cv > ms.pooled_summary().cv,
                "schedbench: MT repetitions far more variable than ST");
  }

  // (b)/(e) syncbench, 32 threads: CV per run for each construct.
  {
    report::Table t({"construct", "ST mean CV", "MT mean CV",
                     "ST worst CV", "MT worst CV"});
    bool mt_noisier_everywhere = true;
    for (auto c : bench::all_sync_constructs()) {
      const auto run_sync = [&](const char* mode,
                                const ompsim::TeamConfig& team,
                                const ExperimentSpec& spec) {
        bench::SimSyncBench sb(s, team);
        return ctx.protocol(
            std::string("sync32/") + mode + "/" +
                bench::sync_construct_name(c),
            spec,
            harness::cell_key("syncbench", p.name, team)
                .add("construct", bench::sync_construct_name(c)),
            [&] { return sb.run_protocol(c, spec, ctx.jobs()); });
      };
      const auto ms = run_sync("st", st_team(32), harness::paper_spec(6003));
      const auto mm = run_sync("mt", mt_team(32), harness::paper_spec(6004));
      const auto cv_stats_s = stats::summarize(ms.run_cvs());
      const auto cv_stats_m = stats::summarize(mm.run_cvs());
      t.add_row({bench::sync_construct_name(c),
                 report::fmt_fixed(cv_stats_s.mean, 5),
                 report::fmt_fixed(cv_stats_m.mean, 5),
                 report::fmt_fixed(cv_stats_s.max, 5),
                 report::fmt_fixed(cv_stats_m.max, 5)});
      if (c == bench::SyncConstruct::for_ ||
          c == bench::SyncConstruct::single ||
          c == bench::SyncConstruct::ordered ||
          c == bench::SyncConstruct::reduction) {
        mt_noisier_everywhere &= cv_stats_m.mean > cv_stats_s.mean;
      }
    }
    std::printf("(b)/(e) syncbench 32 threads, per-run CV:\n%s\n",
                t.render().c_str());
    ctx.record_table("sync32_cv_per_construct", t);
    ctx.verdict(mt_noisier_everywhere,
                "syncbench: MT CV higher for for/single/ordered/"
                "reduction");
  }

  // (c)/(f) BabelStream, 128 threads and the small-scale comparison.
  {
    const auto ms = stream_cell("stream128/st", st_team(128),
                                harness::paper_spec(6005, 10, 50));
    const auto mm = stream_cell("stream128/mt", mt_team(128),
                                harness::paper_spec(6006, 10, 50));
    std::printf(
        "(c)/(f) BabelStream triad 128 threads: ST %.3f ms (CV %.4f) vs "
        "MT %.3f ms (CV %.4f)\n",
        ms.grand_mean(), ms.pooled_summary().cv, mm.grand_mean(),
        mm.pooled_summary().cv);
    ctx.metric("stream128_st_ms", ms.grand_mean());
    ctx.metric("stream128_mt_ms", mm.grand_mean());
    ctx.verdict(mm.grand_mean() >= ms.grand_mean() * 0.95,
                "BabelStream does not benefit from using SMT");

    const auto ms8 = stream_cell("stream8/st", st_team(8),
                                 harness::paper_spec(6007, 10, 50));
    const auto mm8 = stream_cell("stream8/mt", mt_team(8),
                                 harness::paper_spec(6008, 10, 50));
    std::printf("BabelStream triad 8 threads: ST %.3f ms vs MT %.3f ms\n",
                ms8.grand_mean(), mm8.grand_mean());
    ctx.verdict(mm8.grand_mean() / ms8.grand_mean() < 1.5,
                "at small scale ST does not outperform MT much");
  }
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig5", "Figure 5 — higher variability due to SMT (Dardel)", run_fig5};

}  // namespace
