// perf_hotpath — tracked perf-regression harness for the simulator's query
// kernels.
//
// Every figure/table cell funnels through Simulator::exec, whose inner loop
// is NoiseModel::preemption_delay + FreqModel::mean_factor /
// elapsed_for_work. This harness materializes event/episode streams at
// three densities, then self-times each kernel twice over the same frozen
// stream and query sequence:
//
//   * the indexed implementation (sorted-merge horizon + prefix-sum
//     interval queries — the production path), and
//   * the retained brute-force reference (sim/reference.hpp), which is the
//     pre-index O(events) scan — the baseline every BENCH_hotpath.json
//     records its speedup against.
//
// Results go to stdout, to the JSON artifact (wall-clock metrics — like
// micro_core this harness is outside the campaign's byte-stability
// guarantee), and to BENCH_hotpath.json (override the path with
// OMNIVAR_HOTPATH_OUT), the repo's accumulating perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <vector>

#include "bench/harness.hpp"
#include "cli/hotpath_report.hpp"
#include "sim/isa.hpp"
#include "sim/reference.hpp"

using namespace omv;

namespace {

/// Volatile sink defeating dead-code elimination of the measured calls.
volatile double g_sink = 0.0;

/// ns/call of `fn`, batch-grown until `min_seconds` of wall time accrue.
double time_ns_per_call(const std::function<double()>& fn,
                        double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::size_t batch = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < batch; ++i) g_sink = g_sink + fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_seconds) {
      return s * 1e9 / static_cast<double>(batch);
    }
    batch *= 2;
  }
}

/// Best (minimum) ns/call over `reps` independent timing repetitions.
/// Interference from the host — interrupts, other processes — only ever
/// adds time, so the minimum is the robust estimator of true kernel cost;
/// medians still wander by ~10% on a single-CPU box, enough to flip the
/// near-1.0 batched-vs-per-call speedup cells run to run.
double best_ns(const std::function<double()>& fn, double min_seconds,
               std::size_t reps) {
  double best = time_ns_per_call(fn, min_seconds);
  for (std::size_t r = 1; r < reps; ++r) {
    best = std::min(best, time_ns_per_call(fn, min_seconds));
  }
  return best;
}

struct PairNs {
  double opt;
  double base;
};

/// Interleaved best-of-reps for an optimized/baseline pair. Host
/// throughput also drifts on a scale of seconds, so timing all of `opt`'s
/// reps before any of `base`'s lets that drift masquerade as a speedup
/// change; alternating every rep makes both minima come from the same
/// quietest stretch of the run.
PairNs best_pair_ns(const std::function<double()>& opt,
                    const std::function<double()>& base, double min_seconds,
                    std::size_t reps) {
  PairNs best{time_ns_per_call(opt, min_seconds),
              time_ns_per_call(base, min_seconds)};
  for (std::size_t r = 1; r < reps; ++r) {
    best.opt = std::min(best.opt, time_ns_per_call(opt, min_seconds));
    best.base = std::min(best.base, time_ns_per_call(base, min_seconds));
  }
  return best;
}

struct Density {
  const char* name;
  double kworker_rate;   ///< noise events per second per HW thread.
  double episode_rate;   ///< frequency dips per second per NUMA domain.
  double episode_mean;   ///< mean dip duration — scaled down with rate so
                         ///< concurrent-dip counts stay realistic.
};

/// Deterministic query-window mix: start times across the stream, window
/// lengths from 10 us to 0.3 s, so both the scan-window and the prefix-sum
/// query paths are exercised.
struct Windows {
  std::vector<double> t0;
  std::vector<double> t1;
  std::vector<std::size_t> where;  ///< HW thread / core, cycling.
  std::size_t next = 0;

  Windows(double horizon, std::size_t n_places, std::uint64_t seed) {
    Rng rng(seed);
    for (std::size_t i = 0; i < 256; ++i) {
      const double a = rng.uniform(0.0, 0.7 * horizon);
      t0.push_back(a);
      t1.push_back(a + rng.uniform(1e-5, 0.3));
      where.push_back(rng.next_below(n_places));
    }
  }

  /// Latest window end — the stream must be materialized past it before
  /// the reference queries run (they throw on under-materialized reads).
  [[nodiscard]] double max_end() const {
    return *std::max_element(t1.begin(), t1.end());
  }

  std::size_t step() {
    next = (next + 1) % t0.size();
    return next;
  }
};

int run_perf_hotpath(cli::RunContext& ctx) {
  harness::header(
      ctx,
      "perf_hotpath — simulator query-kernel timings (ns/op, wall clock)",
      "(not a paper experiment; tracks the hot-path perf trajectory — "
      "indexed queries vs the retained brute-force baseline)");
  // Self-timed wall-clock kernels, no protocol() cells: nothing to declare
  // on an enumeration pass, and the timing loops must not burn real time.
  if (ctx.enumerating()) return 0;

  const bool quick = [] {
    const char* q = std::getenv("OMNIVAR_QUICK");
    return q && q[0] == '1';
  }();
  const double budget = quick ? 0.002 : 0.02;
  const std::size_t reps = quick ? 3 : 7;
  const double horizon = quick ? 0.5 : 2.0;

  // The paper's DVFS-active platform by default (Vera); the selected
  // scenario (with its active-DVFS session freq profile) otherwise.
  const auto platform = ctx.scenario()
                            ? harness::freq_session_platform(ctx)
                            : harness::vera();
  if (!ctx.scenario()) ctx.note_platform(platform.name, platform.fingerprint);
  const auto& machine = platform.machine;
  const std::vector<Density> densities = {
      {"low", 2.0, 0.05, 0.6},
      {"mid", 50.0, 20.0, 0.05},
      {"high", 10000.0, 2000.0, 0.002},
  };

  cli::HotpathReport report;
  report.quick = quick;
  report.sim_machine = machine.name();
  report.isa = sim::isa_name(sim::active_isa());
  report.isa_overridden = sim::isa_overridden();
  report.noise_scan_cutover = sim::NoiseModel::kScanCutover;
  report.freq_scan_cutover = sim::FreqModel::kScanCutover;
  report::Table table(
      {"kernel", "density", "events", "optimized ns/op", "baseline ns/op",
       "speedup"});
  bool all_measured = true;

  const auto record = [&](const char* kernel, const char* density,
                          std::size_t events, double opt_ns, double base_ns,
                          const char* baseline_kind = "reference_scan") {
    report.kernels.push_back(
        {kernel, density, events, opt_ns, base_ns, baseline_kind});
    table.add_row({kernel, density, std::to_string(events),
                   report::fmt_fixed(opt_ns, 1),
                   base_ns > 0.0 ? report::fmt_fixed(base_ns, 1) : "-",
                   base_ns > 0.0 ? report::fmt_fixed(base_ns / opt_ns, 1)
                                 : "-"});
    all_measured &= opt_ns > 0.0;
    if (report.kernels.back().regression()) {
      ctx.print("[PERF-REGRESSION] %s/%s speedup=%.3f (vs %s)\n", kernel,
                density, base_ns / opt_ns, baseline_kind);
    }
    const std::string stem =
        std::string("ns_per_op/") + kernel + "/" + density;
    ctx.metric(stem + "/indexed", opt_ns);
    if (base_ns > 0.0) ctx.metric(stem + "/baseline", base_ns);
  };

  for (const auto& d : densities) {
    // --- NoiseModel::preemption_delay --------------------------------
    sim::NoiseConfig ncfg = platform.config.noise;
    ncfg.kworker_rate_per_cpu = d.kworker_rate;
    sim::NoiseModel noise(machine, ncfg);
    noise.begin_run(42, machine.primary_threads());
    Windows nw(horizon, machine.n_threads(), 7);
    // Freeze the stream past every query window (the short quick-mode
    // horizon used to leave the last windows past the materialized edge,
    // which the reference queries silently tolerated — no longer).
    noise.materialize_to(std::max(horizon, nw.max_end()));
    std::size_t n_events = 0;
    for (std::size_t h = 0; h < noise.n_event_streams(); ++h) {
      n_events += noise.event_times(h).size();
    }

    const auto [noise_opt, noise_base] = best_pair_ns(
        [&] {
          const std::size_t k = nw.step();
          return noise.preemption_delay(nw.where[k], nw.t0[k], nw.t1[k]);
        },
        [&] {
          const std::size_t k = nw.step();
          return sim::reference::preemption_delay(noise, machine, nw.where[k],
                                                  nw.t0[k], nw.t1[k]);
        },
        budget, reps);
    record("preemption_delay", d.name, n_events, noise_opt, noise_base);

    // Batched variant: one call answers the whole window set. Baseline is
    // the per-call indexed loop over the same arrays (NOT the reference
    // scan), so this row isolates the batching + ISA gain.
    {
      std::vector<double> out(nw.t0.size());
      const double n_win = static_cast<double>(nw.t0.size());
      const auto [batch_ns, percall_ns] = best_pair_ns(
          [&] {
            noise.preemption_delay_batch(nw.where, nw.t0, nw.t1, out);
            // Touch, don't reduce: a full sum pass would bill the
            // batch ~1 extra ns/op the per-call loop never pays.
            return out.front() + out[out.size() / 2] + out.back();
          },
          [&] {
            double s = 0.0;
            for (std::size_t k = 0; k < nw.t0.size(); ++k) {
              s += noise.preemption_delay(nw.where[k], nw.t0[k], nw.t1[k]);
            }
            return s;
          },
          budget, reps);
      record("preemption_delay_batch", d.name, n_events, batch_ns / n_win,
             percall_ns / n_win, "indexed_per_call");
    }

    // --- FreqModel::mean_factor / elapsed_for_work -------------------
    sim::FreqConfig fcfg = platform.freq_session;
    fcfg.episode_rate = d.episode_rate;
    fcfg.episode_mean = d.episode_mean;
    sim::FreqModel freq(machine, fcfg);
    freq.begin_run(42);
    Windows fw(horizon, machine.n_cores(), 11);
    freq.materialize_to(std::max(horizon, fw.max_end()));
    std::size_t n_eps = 0;
    for (std::size_t dom = 0; dom < machine.n_numa(); ++dom) {
      n_eps += freq.episode_starts(dom).size();
    }

    const auto [mf_opt, mf_base] = best_pair_ns(
        [&] {
          const std::size_t k = fw.step();
          return freq.mean_factor(fw.where[k], fw.t0[k], fw.t1[k]);
        },
        [&] {
          const std::size_t k = fw.step();
          return sim::reference::mean_factor(freq, fw.where[k], fw.t0[k],
                                             fw.t1[k]);
        },
        budget, reps);
    record("mean_factor", d.name, n_eps, mf_opt, mf_base);

    {
      std::vector<double> out(fw.t0.size());
      const double n_win = static_cast<double>(fw.t0.size());
      const auto [batch_ns, percall_ns] = best_pair_ns(
          [&] {
            freq.mean_factor_batch(fw.where, fw.t0, fw.t1, out);
            return out.front() + out[out.size() / 2] + out.back();
          },
          [&] {
            double s = 0.0;
            for (std::size_t k = 0; k < fw.t0.size(); ++k) {
              s += freq.mean_factor(fw.where[k], fw.t0[k], fw.t1[k]);
            }
            return s;
          },
          budget, reps);
      record("mean_factor_batch", d.name, n_eps, batch_ns / n_win,
             percall_ns / n_win, "indexed_per_call");
    }

    // elapsed_for_work: work sized so every fixed-point window stays
    // inside the materialized horizon (factors are clamped >= 0.1).
    Windows ww(horizon * 0.5, machine.n_cores(), 13);
    const auto [ew_opt, ew_base] = best_pair_ns(
        [&] {
          const std::size_t k = ww.step();
          return freq.elapsed_for_work(ww.where[k], ww.t0[k], 1e-3);
        },
        [&] {
          const std::size_t k = ww.step();
          return sim::reference::elapsed_for_work(freq, ww.where[k],
                                                  ww.t0[k], 1e-3);
        },
        budget, reps);
    record("elapsed_for_work", d.name, n_eps, ew_opt, ew_base);

    {
      std::vector<double> out(ww.t0.size());
      const std::vector<double> work_vec(ww.t0.size(), 1e-3);
      const double n_win = static_cast<double>(ww.t0.size());
      const auto [batch_ns, percall_ns] = best_pair_ns(
          [&] {
            freq.elapsed_for_work_batch(ww.where, ww.t0, work_vec, out);
            return out.front() + out[out.size() / 2] + out.back();
          },
          [&] {
            double s = 0.0;
            for (std::size_t k = 0; k < ww.t0.size(); ++k) {
              s += freq.elapsed_for_work(ww.where[k], ww.t0[k], 1e-3);
            }
            return s;
          },
          budget, reps);
      record("elapsed_for_work_batch", d.name, n_eps, batch_ns / n_win,
             percall_ns / n_win, "indexed_per_call");
    }
  }

  // --- Batched SimTeam compute phase vs the per-thread loop -----------
  // Two identically seeded teams on separate simulators so the two timed
  // paths never perturb each other's RNG streams or horizons.
  {
    const std::size_t t_full = harness::full_team(machine);
    sim::Simulator sim_batched(machine, platform.config);
    ompsim::SimTeam team_batched(sim_batched, harness::pinned_team(t_full),
                                 1);
    team_batched.begin_run(1);
    sim::Simulator sim_loop(machine, platform.config);
    ompsim::SimTeam team_loop(sim_loop, harness::pinned_team(t_full), 1);
    team_loop.begin_run(1);
    const auto [batched_ns, loop_ns] = best_pair_ns(
        [&] {
          team_batched.compute(1e-5);
          return team_batched.now();
        },
        [&] {
          team_loop.compute_loop(1e-5);
          return team_loop.now();
        },
        budget, reps);
    record("team_compute_phase",
           (machine.name() + std::to_string(t_full)).c_str(), t_full,
           batched_ns, loop_ns, "per_thread_loop");
  }

  // --- Full SimTeam barrier phase (absolute, no scan baseline) --------
  {
    sim::Simulator simulator(machine, platform.config);
    const std::size_t t_barrier =
        std::min<std::size_t>(16, harness::full_team(machine));
    ompsim::SimTeam team(simulator, harness::pinned_team(t_barrier), 1);
    team.begin_run(1);
    const double barrier_ns = best_ns(
        [&] {
          team.compute(1e-5);
          team.barrier();
          return team.now();
        },
        budget, reps);
    record("team_barrier_phase",
           (machine.name() + std::to_string(t_barrier)).c_str(), 0,
           barrier_ns, 0.0);
  }

  ctx.table("hotpath", table);

  // Trajectory destination: explicit override first; inside a campaign the
  // file belongs in the campaign directory with the other artifacts (a full
  // `omnivar --out DIR` run must not clobber the committed trajectory
  // point); only a deliberate standalone run writes the CWD default — and a
  // scenario run gets a scenario-suffixed default, because its numbers are
  // calibrated to a different machine and must never overwrite the
  // committed default-platform trajectory.
  const char* out_env = std::getenv("OMNIVAR_HOTPATH_OUT");
  const std::string default_name =
      ctx.scenario() ? "BENCH_hotpath." + ctx.scenario()->name + ".json"
                     : std::string("BENCH_hotpath.json");
  const std::string out_path =
      out_env != nullptr
          ? std::string(out_env)
          : (ctx.caching() ? ctx.out_dir() + "/" + default_name
                           : default_name);
  const bool written = cli::write_hotpath_report(report, out_path);
  ctx.print("\nperf trajectory: %s %s\n", out_path.c_str(),
            written ? "written" : "WRITE FAILED");
  ctx.verdict(all_measured && written,
              "all hot-path kernels measured; " + out_path + " written");
  return written ? 0 : 1;
}

[[maybe_unused]] const cli::Registration reg{
    "perf_hotpath",
    "Perf — simulator query-kernel timings vs brute-force baseline (ns/op)",
    run_perf_hotpath};

}  // namespace
