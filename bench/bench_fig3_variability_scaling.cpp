// Figure 3: scalability of performance variability — normalized min/max
// execution time (per run, over 10 runs) when increasing the number of HW
// threads, for schedbench, syncbench and BabelStream on both platforms.
//
// Paper shapes: higher thread counts add to variability for syncbench and
// BabelStream, especially >=128 HW threads on Dardel and >=30 on Vera;
// schedbench is the least affected (dynamic scheduling self-balances).

#include <algorithm>
#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"
#include "bench_suite/stream_sim.hpp"
#include "bench_suite/syncbench_sim.hpp"

using namespace omv;

namespace {

struct SpreadRow {
  double worst_norm_max = 0.0;  // max over runs of (max/mean)
  double worst_norm_min = 1.0;  // min over runs of (min/mean)
};

SpreadRow spread(const RunMatrix& m) {
  SpreadRow r;
  for (std::size_t i = 0; i < m.runs(); ++i) {
    r.worst_norm_max = std::max(r.worst_norm_max, m.run_norm_max(i));
    r.worst_norm_min = std::min(r.worst_norm_min, m.run_norm_min(i));
  }
  return r;
}

void run_platform(const harness::Platform& p,
                  const std::vector<std::size_t>& counts,
                  std::uint64_t seed) {
  sim::Simulator s(p.machine, p.config);
  std::printf("-- %s --\n", p.name);
  report::Series series(
      "threads",
      {"sched_nmin", "sched_nmax", "sync_nmin", "sync_nmax",
       "stream_nmin", "stream_nmax"});

  double sync_spread_low = 0.0;
  double sync_spread_sum = 0.0;
  double sched_spread_sum = 0.0;
  double sync_spread_high = 0.0;
  for (std::size_t t : counts) {
    bench::SimSchedBench sched(s, harness::pinned_team(t),
                               bench::EpccParams::schedbench(), 10000);
    const auto m_sched = sched.run_protocol(
        ompsim::Schedule::dynamic, 1, harness::paper_spec(seed + t, 10, 30),
            harness::jobs());
    bench::SimSyncBench sync(s, harness::pinned_team(t));
    const auto m_sync = sync.run_protocol(
        bench::SyncConstruct::reduction, harness::paper_spec(seed + t),
            harness::jobs());
    bench::SimStream stream(s, harness::pinned_team(t));
    const auto m_stream = stream.run_protocol(
        bench::StreamKernel::triad, harness::paper_spec(seed + t, 10, 50),
            harness::jobs());

    const auto a = spread(m_sched);
    const auto b = spread(m_sync);
    const auto c = spread(m_stream);
    series.add(static_cast<double>(t),
               {a.worst_norm_min, a.worst_norm_max, b.worst_norm_min,
                b.worst_norm_max, c.worst_norm_min, c.worst_norm_max});

    const double sync_sp = b.worst_norm_max - b.worst_norm_min;
    sync_spread_sum += sync_sp;
    sched_spread_sum += a.worst_norm_max - a.worst_norm_min;
    if (t == counts.front()) sync_spread_low = sync_sp;
    if (t == counts.back()) sync_spread_high = sync_sp;
  }
  std::printf("%s\n", series.render(report::Format::ascii, 4).c_str());
  harness::verdict(sync_spread_high > sync_spread_low,
                   std::string(p.name) +
                       ": syncbench variability grows with thread count");
  harness::verdict(sched_spread_sum < sync_spread_sum,
                   std::string(p.name) +
                       ": schedbench is the least affected benchmark "
                       "(mean spread across counts)");
}

}  // namespace

int main(int argc, char** argv) {
  harness::parse_args(argc, argv);
  harness::header(
      "Figure 3 — scalability of performance variability (normalized "
      "min/max)",
      "variability grows with thread count for syncbench and BabelStream "
      "(>=128 HW threads on Dardel, >=30 on Vera); schedbench is least "
      "affected");
  run_platform(harness::dardel(), {4, 16, 64, 128, 254}, 4001);
  run_platform(harness::vera(), {2, 8, 16, 24, 30}, 4064);
  return 0;
}
