// Figure 3: scalability of performance variability — normalized min/max
// execution time (per run, over 10 runs) when increasing the number of HW
// threads, for schedbench, syncbench and BabelStream on both platforms.
//
// Paper shapes: higher thread counts add to variability for syncbench and
// BabelStream, especially >=128 HW threads on Dardel and >=30 on Vera;
// schedbench is the least affected (dynamic scheduling self-balances).

#include <algorithm>
#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"
#include "bench_suite/stream_sim.hpp"
#include "bench_suite/syncbench_sim.hpp"

using namespace omv;

namespace {

struct SpreadRow {
  double worst_norm_max = 0.0;  // max over runs of (max/mean)
  double worst_norm_min = 1.0;  // min over runs of (min/mean)
};

SpreadRow spread(const RunMatrix& m) {
  SpreadRow r;
  for (std::size_t i = 0; i < m.runs(); ++i) {
    r.worst_norm_max = std::max(r.worst_norm_max, m.run_norm_max(i));
    r.worst_norm_min = std::min(r.worst_norm_min, m.run_norm_min(i));
  }
  return r;
}

void run_platform(cli::RunContext& ctx, const harness::Platform& p,
                  const std::vector<std::size_t>& counts,
                  std::uint64_t seed) {
  sim::Simulator s(p.machine, p.config);
  ctx.print("-- %s --\n", p.name.c_str());
  report::Series series(
      "threads",
      {"sched_nmin", "sched_nmax", "sync_nmin", "sync_nmax",
       "stream_nmin", "stream_nmax"});

  double sync_spread_low = 0.0;
  double sync_spread_sum = 0.0;
  double sched_spread_sum = 0.0;
  double sync_spread_high = 0.0;
  for (std::size_t t : counts) {
    const auto team = harness::pinned_team(t);
    const std::string cell = p.name + "/t" + std::to_string(t) + "/";

    bench::SimSchedBench sched(s, team, bench::EpccParams::schedbench(),
                               10000);
    const auto spec_sched = harness::paper_spec(seed + t, 10, 30);
    const auto m_sched = ctx.protocol(
        cell + "schedbench", spec_sched,
        harness::cell_key("schedbench", p, team)
            .add("schedule", "dynamic")
            .add("chunk", std::uint64_t{1}),
        [&] {
          return sched.run_protocol(ompsim::Schedule::dynamic, 1,
                                    spec_sched, ctx.jobs(), ctx.checkpoint());
        });

    bench::SimSyncBench sync(s, team);
    const auto spec_sync = harness::paper_spec(seed + t);
    const auto m_sync = ctx.protocol(
        cell + "syncbench", spec_sync,
        harness::cell_key("syncbench", p, team)
            .add("construct", "reduction"),
        [&] {
          return sync.run_protocol(bench::SyncConstruct::reduction,
                                   spec_sync, ctx.jobs(), ctx.checkpoint());
        });

    bench::SimStream stream(s, team);
    const auto spec_stream = harness::paper_spec(seed + t, 10, 50);
    const auto m_stream = ctx.protocol(
        cell + "stream", spec_stream,
        harness::cell_key("babelstream", p, team)
            .add("kernel", "triad"),
        [&] {
          return stream.run_protocol(bench::StreamKernel::triad,
                                     spec_stream, ctx.jobs(), ctx.checkpoint());
        });

    const auto a = spread(m_sched);
    const auto b = spread(m_sync);
    const auto c = spread(m_stream);
    series.add(static_cast<double>(t),
               {a.worst_norm_min, a.worst_norm_max, b.worst_norm_min,
                b.worst_norm_max, c.worst_norm_min, c.worst_norm_max});

    const double sync_sp = b.worst_norm_max - b.worst_norm_min;
    sync_spread_sum += sync_sp;
    sched_spread_sum += a.worst_norm_max - a.worst_norm_min;
    if (t == counts.front()) sync_spread_low = sync_sp;
    if (t == counts.back()) sync_spread_high = sync_sp;
  }
  ctx.series(p.name, series, 4);
  ctx.verdict(sync_spread_high > sync_spread_low,
              p.name + ": syncbench variability grows with thread count");
  ctx.verdict(sched_spread_sum < sync_spread_sum,
              p.name + ": schedbench is the least affected benchmark "
                       "(mean spread across counts)");
}

int run_fig3(cli::RunContext& ctx) {
  harness::header(
      ctx,
      "Figure 3 — scalability of performance variability (normalized "
      "min/max)",
      "variability grows with thread count for syncbench and BabelStream "
      "(>=128 HW threads on Dardel, >=30 on Vera); schedbench is least "
      "affected");
  const auto ps = harness::platforms(ctx);
  if (harness::scenario_mode(ctx)) {
    run_platform(ctx, ps[0], harness::thread_ladder(ps[0].machine), 4001);
  } else {
    run_platform(ctx, ps[0], {4, 16, 64, 128, 254}, 4001);
    run_platform(ctx, ps[1], {2, 8, 16, 24, 30}, 4064);
  }
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig3",
    "Figure 3 — scalability of performance variability (normalized "
    "min/max)",
    run_fig3};

}  // namespace
