// Extension: EPCC taskbench subset on the simulated platforms (the paper's
// future work points beyond worksharing loops; LaGrone et al.'s task
// overhead micro-benchmarks are the canonical next step).
//
// Expected shapes: parallel task generation scales with the team while
// master task generation saturates at the single producer; both inherit
// the platform's variability mechanisms (pinning still matters).

#include "bench/harness.hpp"
#include "bench_suite/protocol.hpp"
#include "omp_model/tasking.hpp"

using namespace omv;

namespace {

/// Tasking needs no benchmark object — the team is the whole state.
struct NoBench {};

RunMatrix run_tasking(cli::RunContext& ctx, const harness::Platform& p,
                      const std::string& label, sim::Simulator& s,
                      const ompsim::TeamConfig& cfg, bool master,
                      std::uint64_t seed) {
  const auto spec = harness::paper_spec(seed, 8, 30);
  return ctx.protocol(
      label, spec,
      harness::cell_key("taskbench", p, cfg)
          .add("pattern", master ? "master" : "parallel"),
      [&] {
        return bench::run_protocol_sharded(
            s, cfg, spec, ctx.jobs(),
            [](sim::Simulator&) { return NoBench{}; },
            [master](NoBench&, ompsim::SimTeam& team) {
              team.begin_rep();
              const double t0 = team.now();
              if (master) {
                ompsim::master_task_generation(team, 64 * team.size(),
                                               1e-6);
              } else {
                ompsim::parallel_task_generation(team, 64, 1e-6);
              }
              return (team.now() - t0) * 1e6;
            },
            bench::NoRunEndHook{}, ctx.checkpoint());
      });
}

int run_taskbench(cli::RunContext& ctx) {
  harness::header(
      ctx, "Extension — EPCC taskbench subset (simulated platforms)",
      "parallel task generation scales with the team; master task "
      "generation bottlenecks on the single producer; unpinned tasking "
      "inherits the Fig. 4 variability");

  const auto p = harness::primary(ctx);
  sim::Simulator s(p.machine, p.config);
  // Stage sizes derived from the machine (Dardel: 32 and 128 threads).
  const std::size_t t_big = harness::full_team(p.machine);
  const std::size_t t_small =
      std::min(std::max<std::size_t>(2, t_big / 4), t_big);

  report::Table t({"pattern", "threads", "mean rep (us)", "pooled CV"});
  double par128 = 0.0;
  double mas32 = 0.0;
  double mas128 = 0.0;
  for (int stage = 0; stage < 2; ++stage) {
    // Branch on the stage, not on thread-count equality: a degenerate
    // scenario machine can collapse t_small onto t_big, and both stages
    // must still assign their own accumulators.
    const std::size_t threads = stage == 0 ? t_small : t_big;
    const std::string ts = std::to_string(threads);
    const auto mp =
        run_tasking(ctx, p, "parallel/t" + ts, s,
                    harness::pinned_team(threads), false, 9301 + threads);
    const auto mm = run_tasking(ctx, p, "master/t" + ts, s,
                                harness::pinned_team(threads), true,
                                9401 + threads);
    t.add_row({"parallel generation", ts,
               report::fmt_fixed(mp.grand_mean(), 1),
               report::fmt_fixed(mp.pooled_summary().cv, 5)});
    t.add_row({"master generation", ts,
               report::fmt_fixed(mm.grand_mean(), 1),
               report::fmt_fixed(mm.pooled_summary().cv, 5)});
    if (stage == 0) {
      mas32 = mm.grand_mean();
    } else {
      par128 = mp.grand_mean();
      mas128 = mm.grand_mean();
    }
  }
  ctx.table("task_generation", t);
  // Per-task totals are fixed per thread for parallel generation, so the
  // rep time stays near-flat with team size; master generation's rep time
  // grows with total tasks (64*T) at a near-serial producer.
  ctx.verdict(mas128 > mas32 * 2.0,
              "master generation degrades with team size (producer "
              "bottleneck)");
  ctx.verdict(par128 < mas128,
              "parallel generation beats master generation at scale");

  // Pinning still matters for tasking.
  const std::string tb = std::to_string(t_big);
  const auto pin = run_tasking(ctx, p, "parallel/t" + tb + "/pinned", s,
                               harness::pinned_team(t_big), false, 9501);
  const auto unpin =
      run_tasking(ctx, p, "parallel/t" + tb + "/unpinned", s,
                  harness::unpinned_team(t_big), false, 9502);
  ctx.print("tasking, %s threads: pinned CV %.5f vs unpinned CV %.5f\n",
            tb.c_str(), pin.pooled_summary().cv,
            unpin.pooled_summary().cv);
  ctx.metric("pinned_cv", pin.pooled_summary().cv);
  ctx.metric("unpinned_cv", unpin.pooled_summary().cv);
  ctx.verdict(unpin.pooled_summary().cv > pin.pooled_summary().cv,
              "unpinned tasking inherits the Fig. 4 variability");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "ext_taskbench", "Extension — EPCC taskbench subset (simulated "
    "platforms)",
    run_taskbench};

}  // namespace
