// Figure 2: BabelStream execution time (ms) when increasing the number of
// HW threads on Dardel (2-254) and Vera (2-30).
//
// Paper shape: kernel execution time decreases as more threads are
// launched, on both platforms (bandwidth aggregates across cores and NUMA
// domains until saturation).

#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/stream_sim.hpp"

using namespace omv;

namespace {

void run_platform(cli::RunContext& ctx, const harness::Platform& p,
                  const std::vector<std::size_t>& counts,
                  std::uint64_t seed) {
  sim::Simulator s(p.machine, p.config);
  ctx.print("-- %s (array 2^25 doubles) --\n", p.name.c_str());
  std::vector<std::string> names;
  for (auto k : bench::all_stream_kernels()) {
    names.push_back(std::string(bench::stream_kernel_name(k)) + "_ms");
  }
  report::Series series("threads", names);

  double first_triad = 0.0;
  double last_triad = 0.0;
  for (std::size_t t : counts) {
    std::vector<double> row;
    for (auto k : bench::all_stream_kernels()) {
      const auto team = harness::pinned_team(t);
      bench::SimStream st(s, team);
      const auto spec = harness::paper_spec(seed + t, 10, 50);
      const auto m = ctx.protocol(
          p.name + "/t" + std::to_string(t) + "/" +
              bench::stream_kernel_name(k),
          spec,
          harness::cell_key("babelstream", p, team)
              .add("kernel", bench::stream_kernel_name(k)),
          [&] {
            return st.run_protocol(k, spec, ctx.jobs(), ctx.checkpoint());
          });
      row.push_back(m.grand_mean());
      if (k == bench::StreamKernel::triad) {
        if (t == counts.front()) first_triad = m.grand_mean();
        if (t == counts.back()) last_triad = m.grand_mean();
      }
    }
    series.add(static_cast<double>(t), std::move(row));
  }
  ctx.series(p.name, series, 3);
  ctx.verdict(
      last_triad < first_triad,
      p.name + ": execution time decreases with more threads");
}

int run_fig2(cli::RunContext& ctx) {
  harness::header(
      ctx, "Figure 2 — BabelStream execution time (ms) vs HW threads",
      "execution time reduces when launching more parallel threads, on "
      "both Dardel and Vera");
  const auto ps = harness::platforms(ctx);
  if (harness::scenario_mode(ctx)) {
    run_platform(ctx, ps[0], harness::thread_ladder(ps[0].machine), 3001);
  } else {
    run_platform(ctx, ps[0], {2, 4, 8, 16, 32, 64, 128, 254}, 3001);
    run_platform(ctx, ps[1], {2, 4, 8, 16, 24, 30}, 3002);
  }
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "fig2", "Figure 2 — BabelStream execution time (ms) vs HW threads",
    run_fig2};

}  // namespace
