// Table 2: schedbench (dynamic_1) execution time per run.
//
// Reproduces the paper's table: 10 runs of dynamic-schedule chunk-1
// schedbench on Dardel (4 and 254 threads) and Vera (4 and 30 threads),
// reporting the mean repetition time (us) of each run. The paper's
// observations: values are tight at 4 threads, grow with thread count
// (chunk-grab contention), and the full-node column shows an occasional
// run-level outlier (run 9 on Dardel, ~10% slower).

#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"

using namespace omv;

namespace {

int run_table2(cli::RunContext& ctx) {
  harness::header(
      ctx,
      "Table 2 — schedbench (dynamic_1) higher execution time (us)",
      "Dardel: ~124,000us @4thr, ~154,200us @254thr with run 9 at "
      "~168,800us; Vera: ~136,500us @4thr, ~164,700us @30thr — tight "
      "columns except one full-node outlier run");

  struct Column {
    harness::Platform platform;
    std::size_t threads;
    std::uint64_t seed;
  };
  std::vector<Column> cols;
  if (harness::scenario_mode(ctx)) {
    // One platform, two columns: a small team and the full-node team,
    // sharing a seed so a run-scoped cap draw lines up across columns
    // (load-gated away at 4 threads, surfacing at full scale).
    const auto p = harness::platforms(ctx).front();
    cols.push_back({p, std::min<std::size_t>(4, p.machine.n_threads()),
                    1072});
    cols.push_back({p, harness::spare2_team(p.machine), 1072});
  } else {
    // Both Dardel columns share a seed so the run that draws the
    // run-scoped frequency cap is the same: at 4 threads the cap is
    // load-gated away (tight column), at 254 threads it surfaces as the
    // paper's run-9-style outlier.
    cols.push_back({harness::dardel(), 4, 1072});
    cols.push_back({harness::dardel(), 254, 1072});
    cols.push_back({harness::vera(), 4, 1009});
    cols.push_back({harness::vera(), 30, 1004});
    (void)harness::platforms(ctx);  // records the pair into the artifact
  }

  std::vector<RunMatrix> results;
  std::vector<std::string> headers{"run #"};
  for (auto& c : cols) {
    sim::Simulator s(c.platform.machine, c.platform.config);
    const auto team = harness::pinned_team(c.threads);
    bench::SimSchedBench sb(s, team, bench::EpccParams::schedbench(),
                            /*max_grabs_per_rep=*/10000);
    const auto spec = harness::paper_spec(c.seed);
    results.push_back(ctx.protocol(
        c.platform.name + "/t" + std::to_string(c.threads),
        spec,
        harness::cell_key("schedbench", c.platform, team)
            .add("schedule", "dynamic")
            .add("chunk", std::uint64_t{1}),
        [&] {
          return sb.run_protocol(ompsim::Schedule::dynamic, 1, spec,
                                 ctx.jobs(), ctx.checkpoint());
        }));
    headers.push_back(c.platform.name + " " +
                      std::to_string(c.threads) + " thr");
  }

  report::Table t(headers);
  const std::size_t runs = results[0].runs();
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::string> row{std::to_string(r + 1)};
    for (const auto& m : results) {
      row.push_back(report::fmt_fixed(m.run_mean(r), 2));
    }
    t.add_row(std::move(row));
  }
  ctx.table("per_run_means", t);

  report::Table stats({"column", "grand mean (us)", "run spread (max/min)",
                       "run-to-run CV"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    stats.add_row({headers[i + 1],
                   report::fmt_fixed(results[i].grand_mean(), 1),
                   report::fmt_fixed(results[i].run_mean_spread(), 4),
                   report::fmt_fixed(results[i].run_to_run_cv(), 5)});
  }
  ctx.table("column_stats", stats);

  // Scenario mode has one platform pair of columns; the paper default has
  // two platforms' pairs. Verdicts check every small/full column pair.
  bool grows = true;
  bool tight4 = true;
  bool outlier_somewhere = false;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    grows &= results[i].grand_mean() < results[i + 1].grand_mean();
    tight4 &= results[i].run_mean_spread() < 1.01;
    outlier_somewhere |= results[i + 1].run_mean_spread() > 1.03;
  }
  ctx.verdict(grows,
              "execution time grows with thread count under dynamic_1");
  ctx.verdict(tight4, "4-thread columns are tight (<1% run spread)");
  ctx.verdict(outlier_somewhere,
              "a full-node column shows a run-level outlier");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "table2", "Table 2 — schedbench (dynamic_1) execution time per run",
    run_table2};

}  // namespace
