// Table 2: schedbench (dynamic_1) execution time per run.
//
// Reproduces the paper's table: 10 runs of dynamic-schedule chunk-1
// schedbench on Dardel (4 and 254 threads) and Vera (4 and 30 threads),
// reporting the mean repetition time (us) of each run. The paper's
// observations: values are tight at 4 threads, grow with thread count
// (chunk-grab contention), and the full-node column shows an occasional
// run-level outlier (run 9 on Dardel, ~10% slower).

#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/schedbench_sim.hpp"

using namespace omv;

namespace {

int run_table2(cli::RunContext& ctx) {
  harness::header(
      "Table 2 — schedbench (dynamic_1) higher execution time (us)",
      "Dardel: ~124,000us @4thr, ~154,200us @254thr with run 9 at "
      "~168,800us; Vera: ~136,500us @4thr, ~164,700us @30thr — tight "
      "columns except one full-node outlier run");

  struct Column {
    harness::Platform platform;
    std::size_t threads;
    std::uint64_t seed;
  };
  std::vector<Column> cols;
  // Both Dardel columns share a seed so the run that draws the run-scoped
  // frequency cap is the same: at 4 threads the cap is load-gated away
  // (tight column), at 254 threads it surfaces as the paper's run-9-style
  // outlier.
  cols.push_back({harness::dardel(), 4, 1072});
  cols.push_back({harness::dardel(), 254, 1072});
  cols.push_back({harness::vera(), 4, 1009});
  cols.push_back({harness::vera(), 30, 1004});

  std::vector<RunMatrix> results;
  std::vector<std::string> headers{"run #"};
  for (auto& c : cols) {
    sim::Simulator s(c.platform.machine, c.platform.config);
    const auto team = harness::pinned_team(c.threads);
    bench::SimSchedBench sb(s, team, bench::EpccParams::schedbench(),
                            /*max_grabs_per_rep=*/10000);
    const auto spec = harness::paper_spec(c.seed);
    results.push_back(ctx.protocol(
        std::string(c.platform.name) + "/t" + std::to_string(c.threads),
        spec,
        harness::cell_key("schedbench", c.platform.name, team)
            .add("schedule", "dynamic")
            .add("chunk", std::uint64_t{1}),
        [&] {
          return sb.run_protocol(ompsim::Schedule::dynamic, 1, spec,
                                 ctx.jobs());
        }));
    headers.push_back(std::string(c.platform.name) + " " +
                      std::to_string(c.threads) + " thr");
  }

  report::Table t(headers);
  const std::size_t runs = results[0].runs();
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::string> row{std::to_string(r + 1)};
    for (const auto& m : results) {
      row.push_back(report::fmt_fixed(m.run_mean(r), 2));
    }
    t.add_row(std::move(row));
  }
  ctx.table("per_run_means", t);

  report::Table stats({"column", "grand mean (us)", "run spread (max/min)",
                       "run-to-run CV"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    stats.add_row({headers[i + 1],
                   report::fmt_fixed(results[i].grand_mean(), 1),
                   report::fmt_fixed(results[i].run_mean_spread(), 4),
                   report::fmt_fixed(results[i].run_to_run_cv(), 5)});
  }
  ctx.table("column_stats", stats);

  ctx.verdict(results[0].grand_mean() < results[1].grand_mean() &&
                  results[2].grand_mean() < results[3].grand_mean(),
              "execution time grows with thread count under dynamic_1");
  ctx.verdict(results[0].run_mean_spread() < 1.01 &&
                  results[2].run_mean_spread() < 1.01,
              "4-thread columns are tight (<1% run spread)");
  ctx.verdict(results[1].run_mean_spread() > 1.03 ||
                  results[3].run_mean_spread() > 1.03,
              "a full-node column shows a run-level outlier");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "table2", "Table 2 — schedbench (dynamic_1) execution time per run",
    run_table2};

}  // namespace
