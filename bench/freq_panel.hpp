#pragma once
// Shared panel machinery for the frequency-variation figures (6 and 7):
// runs a sharded protocol on 16 close-bound threads over a places spec
// while capturing each run's 100 Hz frequency trace, merged in protocol
// order. Delegates to bench_suite/protocol.hpp's per-run cloning contract
// (single implementation) via its end-of-run hook.
//
// The cached variant persists the panel's trace as a ".trace.csv" sidecar
// of the RunMatrix cache entry, so a cached campaign cell restores the
// whole panel (matrix + frequency-dip statistics) without recomputing.

#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/protocol.hpp"
#include "freqlog/logger.hpp"
#include "freqlog/trace_csv.hpp"

namespace omv::harness {

struct FreqPanelResult {
  RunMatrix matrix;
  freqlog::FreqTrace trace;
};

/// Geometry of the frequency figures' one-NUMA-vs-two-NUMA contrast on a
/// platform: equal-sized teams (Vera: 16 threads) placed on one domain
/// ("{0}:16:1") vs split across two ("{0}:8:1,{16}:8:1"). Not applicable
/// on single-NUMA machines or flat-frequency profiles — `reason` then
/// carries the explanatory line the harness prints before exiting 0.
struct FreqPanelGeometry {
  bool applicable = false;
  std::string reason;
  std::size_t threads = 0;  ///< team size of BOTH panels (always even).
  std::string one_places;
  std::string two_places;
};

inline FreqPanelGeometry freq_panel_geometry(const Platform& p) {
  FreqPanelGeometry g;
  if (p.machine.n_numa() < 2) {
    g.reason = "scenario '" + p.name +
               "' has a single NUMA domain; the one-vs-two NUMA placement "
               "contrast does not apply.";
    return g;
  }
  if (p.config.freq.episode_rate <= 0.0) {
    g.reason = "scenario '" + p.name +
               "' has a flat frequency profile (no dip episodes); the "
               "frequency-variation contrast does not apply.";
    return g;
  }
  const std::size_t cpn = cores_per_numa(p.machine);
  const std::size_t per = std::min(cpn, p.machine.n_cores() / 2);
  // Both panels must run the SAME team size or the CV contrast would
  // partly measure team size, not placement — so round down to an even
  // count that splits cleanly across the two domains.
  const std::size_t half = std::max<std::size_t>(1, per / 2);
  g.applicable = true;
  g.threads = 2 * half;
  g.one_places = "{0}:" + std::to_string(g.threads) + ":1";
  g.two_places = "{0}:" + std::to_string(half) + ":1,{" +
                 std::to_string(cpn) + "}:" + std::to_string(half) + ":1";
  return g;
}

/// Runs `spec` over `places` (`n_threads` threads — the paper's panels
/// used 16, one per place — close bind) against per-run clones of `base`,
/// sampling each run's whole timeline at 100 Hz — like the paper's logger
/// — after the run's last timed repetition.
/// `make_bench(sim, team_cfg)` builds the per-run benchmark object;
/// `rep(bench, team)` executes one repetition and returns microseconds.
template <typename MakeBench, typename Rep>
[[nodiscard]] FreqPanelResult run_freq_panel(const sim::Simulator& base,
                                             const std::string& places,
                                             std::size_t n_threads,
                                             const ExperimentSpec& spec,
                                             std::size_t n_jobs,
                                             MakeBench make_bench, Rep rep) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = n_threads;
  cfg.places_spec = places;
  cfg.bind = topo::ProcBind::close;

  // Per-run traces land in run-indexed slots so the merged trace keeps
  // protocol order under sharded execution; the vector outlives the
  // synchronous sharded call.
  std::vector<freqlog::FreqTrace> traces(spec.runs);
  freqlog::FreqTrace* trace_slots = traces.data();

  FreqPanelResult out;
  out.matrix = bench::run_protocol_sharded(
      base, cfg, spec, n_jobs,
      [make_bench, cfg](sim::Simulator& sim) { return make_bench(sim, cfg); },
      rep,
      [trace_slots](auto& /*bench*/, ompsim::SimTeam& team,
                    sim::Simulator& sim, const RunSlot& slot) {
        freqlog::SimFreqReader reader(sim.freq(), sim.machine().n_cores());
        trace_slots[slot.run].append(
            freqlog::sample_sim(reader, 0.0, team.now(), 0.01));
      });
  for (const auto& tr : traces) out.trace.append(tr);
  return out;
}

/// run_freq_panel through the campaign result cache: the matrix goes into
/// the spec-hash cache as usual and the trace rides along as a sidecar. A
/// missing/corrupt sidecar vetoes the hit, so the cache can only ever
/// restore the complete panel.
template <typename MakeBench, typename Rep>
[[nodiscard]] FreqPanelResult run_freq_panel_cached(
    cli::RunContext& ctx, const std::string& label, SpecKey key,
    const sim::Simulator& base, const std::string& places,
    std::size_t n_threads, const ExperimentSpec& spec, MakeBench make_bench,
    Rep rep) {
  key.add("places_panel", places);
  key.add("threads_panel", n_threads);
  FreqPanelResult out;
  out.matrix = ctx.protocol(
      label, spec, std::move(key),
      [&] {
        auto panel = run_freq_panel(base, places, n_threads, spec,
                                    ctx.jobs(), make_bench, rep);
        out.trace = std::move(panel.trace);
        return std::move(panel.matrix);
      },
      /*save_extra=*/
      [&out](const std::string& stem) {
        freqlog::save_freq_trace(stem + ".trace.csv", out.trace);
      },
      /*load_extra=*/
      [&out](const std::string& stem) {
        try {
          out.trace = freqlog::load_freq_trace(stem + ".trace.csv");
          return true;
        } catch (const std::exception&) {
          return false;
        }
      });
  return out;
}

}  // namespace omv::harness
