#pragma once
// Shared panel machinery for the frequency-variation figures (6 and 7):
// runs a sharded protocol on 16 close-bound threads over a places spec
// while capturing each run's 100 Hz frequency trace, merged in protocol
// order. Delegates to bench_suite/protocol.hpp's per-run cloning contract
// (single implementation) via its end-of-run hook.
//
// The cached variant persists the panel's trace as a ".trace.csv" sidecar
// of the RunMatrix cache entry, so a cached campaign cell restores the
// whole panel (matrix + frequency-dip statistics) without recomputing.

#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "bench_suite/protocol.hpp"
#include "freqlog/logger.hpp"
#include "freqlog/trace_csv.hpp"

namespace omv::harness {

struct FreqPanelResult {
  RunMatrix matrix;
  freqlog::FreqTrace trace;
};

/// Geometry of the frequency figures' one-NUMA-vs-two-NUMA contrast on a
/// platform: equal-sized teams (Vera: 16 threads) placed on one domain
/// ("{0}:16:1") vs split across two ("{0}:8:1,{16}:8:1"). Not applicable
/// on single-NUMA machines or flat-frequency profiles — `reason` then
/// carries the explanatory line the harness prints before exiting 0.
struct FreqPanelGeometry {
  bool applicable = false;
  std::string reason;
  std::size_t threads = 0;  ///< team size of BOTH panels (always even).
  std::string one_places;
  std::string two_places;
};

inline FreqPanelGeometry freq_panel_geometry(const Platform& p) {
  FreqPanelGeometry g;
  if (p.machine.n_numa() < 2) {
    g.reason = "scenario '" + p.name +
               "' has a single NUMA domain; the one-vs-two NUMA placement "
               "contrast does not apply.";
    return g;
  }
  if (p.config.freq.episode_rate <= 0.0) {
    g.reason = "scenario '" + p.name +
               "' has a flat frequency profile (no dip episodes); the "
               "frequency-variation contrast does not apply.";
    return g;
  }
  // Panels are sized from the two domains actually used, not a global
  // cores/numa average: on lopsided machines domain 1 may hold far fewer
  // cores than domain 0, and the split panel must fit inside it.
  const auto d0 = p.machine.cores_in_numa(0);
  const auto d1 = p.machine.cores_in_numa(1);
  const std::size_t per = std::min(d0.size(), p.machine.n_cores() / 2);
  // Both panels must run the SAME team size or the CV contrast would
  // partly measure team size, not placement — so round down to an even
  // count that splits cleanly across the two domains AND fits entirely
  // inside domain 0 for the one-domain panel.
  const std::size_t half = std::min(
      {std::max<std::size_t>(1, per / 2), d1.size(), d0.size() / 2});
  if (half == 0) {
    g.reason = "scenario '" + p.name +
               "' is too small for the one-vs-two NUMA contrast (domains 0/1"
               " hold " +
               std::to_string(d0.size()) + "/" + std::to_string(d1.size()) +
               " cores); the placement contrast does not apply.";
    return g;
  }
  g.applicable = true;
  g.threads = 2 * half;
  // Primary-sibling places over the concrete core pools; on symmetric
  // machines the range compression reproduces the historical "{0}:16:1" /
  // "{0}:8:1,{16}:8:1" strings byte for byte.
  const std::vector<std::size_t> one_cores(
      d0.begin(), d0.begin() + static_cast<std::ptrdiff_t>(g.threads));
  std::vector<std::size_t> split_ids = sibling_ids(
      p.machine,
      {d0.begin(), d0.begin() + static_cast<std::ptrdiff_t>(half)}, 0);
  const std::vector<std::size_t> second_ids = sibling_ids(
      p.machine,
      {d1.begin(), d1.begin() + static_cast<std::ptrdiff_t>(half)}, 0);
  split_ids.insert(split_ids.end(), second_ids.begin(), second_ids.end());
  g.one_places = places_for_ids(sibling_ids(p.machine, one_cores, 0));
  g.two_places = places_for_ids(split_ids);
  return g;
}

/// Runs `spec` over `places` (`n_threads` threads — the paper's panels
/// used 16, one per place — close bind) against per-run clones of `base`,
/// sampling each run's whole timeline at 100 Hz — like the paper's logger
/// — after the run's last timed repetition.
/// `make_bench(sim, team_cfg)` builds the per-run benchmark object;
/// `rep(bench, team)` executes one repetition and returns microseconds.
template <typename MakeBench, typename Rep>
[[nodiscard]] FreqPanelResult run_freq_panel(
    const sim::Simulator& base, const std::string& places,
    std::size_t n_threads, const ExperimentSpec& spec, std::size_t n_jobs,
    MakeBench make_bench, Rep rep,
    const snap::CheckpointPolicy* ckpt = nullptr) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = n_threads;
  cfg.places_spec = places;
  cfg.bind = topo::ProcBind::close;

  // Per-run traces land in run-indexed slots so the merged trace keeps
  // protocol order under sharded execution; the vector outlives the
  // synchronous sharded call.
  std::vector<freqlog::FreqTrace> traces(spec.runs);
  freqlog::FreqTrace* trace_slots = traces.data();

  FreqPanelResult out;
  out.matrix = bench::run_protocol_sharded(
      base, cfg, spec, n_jobs,
      [make_bench, cfg](sim::Simulator& sim) { return make_bench(sim, cfg); },
      rep,
      [trace_slots](auto& /*bench*/, ompsim::SimTeam& team,
                    sim::Simulator& sim, const RunSlot& slot) {
        freqlog::SimFreqReader reader(sim.freq(), sim.machine().n_cores());
        trace_slots[slot.run].append(
            freqlog::sample_sim(reader, 0.0, team.now(), 0.01));
      },
      ckpt);
  for (const auto& tr : traces) out.trace.append(tr);
  return out;
}

/// run_freq_panel through the campaign result cache: the matrix goes into
/// the spec-hash cache as usual and the trace rides along as a sidecar. A
/// missing/corrupt sidecar vetoes the hit, so the cache can only ever
/// restore the complete panel.
template <typename MakeBench, typename Rep>
[[nodiscard]] FreqPanelResult run_freq_panel_cached(
    cli::RunContext& ctx, const std::string& label, SpecKey key,
    const sim::Simulator& base, const std::string& places,
    std::size_t n_threads, const ExperimentSpec& spec, MakeBench make_bench,
    Rep rep) {
  key.add("places_panel", places);
  key.add("threads_panel", n_threads);
  FreqPanelResult out;
  out.matrix = ctx.protocol(
      label, spec, std::move(key),
      [&] {
        auto panel = run_freq_panel(base, places, n_threads, spec,
                                    ctx.jobs(), make_bench, rep,
                                    ctx.checkpoint());
        out.trace = std::move(panel.trace);
        return std::move(panel.matrix);
      },
      /*save_extra=*/
      [&out](const std::string& stem) {
        freqlog::save_freq_trace(stem + ".trace.csv", out.trace);
      },
      /*load_extra=*/
      [&out](const std::string& stem) {
        try {
          out.trace = freqlog::load_freq_trace(stem + ".trace.csv");
          return true;
        } catch (const std::exception&) {
          return false;
        }
      });
  return out;
}

}  // namespace omv::harness
