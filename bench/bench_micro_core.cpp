// Google-benchmark micros for the library's own hot paths: statistics
// kernels, the OMP_PLACES parser, the event queue, the noise model, and
// the worksharing schedulers. These guard the simulator's performance
// envelope (a 254-thread x 100-rep x 10-run experiment must stay seconds).

#include <benchmark/benchmark.h>

#include <vector>

#include "core/bootstrap.hpp"
#include "core/descriptive.hpp"
#include "core/rng.hpp"
#include "omp_model/worksharing.hpp"
#include "sim/event_queue.hpp"
#include "sim/noise.hpp"
#include "topo/places.hpp"

namespace {

std::vector<double> sample_data(std::size_t n) {
  omv::Rng rng(7);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.normal(100.0, 5.0));
  return v;
}

void BM_Summarize(benchmark::State& state) {
  const auto v = sample_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(omv::stats::summarize(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Summarize)->Arg(100)->Arg(1000)->Arg(10000);

void BM_OnlineStats(benchmark::State& state) {
  const auto v = sample_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    omv::stats::OnlineStats s;
    for (double x : v) s.add(x);
    benchmark::DoNotOptimize(s.variance());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnlineStats)->Arg(1000)->Arg(100000);

void BM_Percentile(benchmark::State& state) {
  const auto v = sample_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(omv::stats::percentile(v, 99.0));
  }
}
BENCHMARK(BM_Percentile)->Arg(1000)->Arg(10000);

void BM_BootstrapMeanCi(benchmark::State& state) {
  const auto v = sample_data(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        omv::stats::bootstrap_mean_ci(v, static_cast<std::size_t>(
                                             state.range(0))));
  }
}
BENCHMARK(BM_BootstrapMeanCi)->Arg(200)->Arg(2000);

void BM_PlacesParseAbstract(benchmark::State& state) {
  const auto m = omv::topo::Machine::dardel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(omv::topo::parse_places("cores", m));
  }
}
BENCHMARK(BM_PlacesParseAbstract);

void BM_PlacesParseExplicit(benchmark::State& state) {
  const auto m = omv::topo::Machine::dardel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        omv::topo::parse_places("{0:4}:32:4,{128:4}:32:4", m));
  }
}
BENCHMARK(BM_PlacesParseExplicit);

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    omv::sim::EventQueue q;
    omv::Rng rng(3);
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(rng.next_double(), [] {});
    }
    q.run();
    benchmark::DoNotOptimize(q.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(10000);

void BM_NoisePreemptionQuery(benchmark::State& state) {
  const auto m = omv::topo::Machine::dardel();
  omv::sim::NoiseModel nm(m, omv::sim::NoiseConfig::dardel());
  nm.begin_run(1, m.primary_threads());
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nm.preemption_delay(5, t, t + 0.001));
    t += 0.001;
  }
}
BENCHMARK(BM_NoisePreemptionQuery);

void BM_DynamicScheduleLoop(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  omv::sim::Simulator s(omv::topo::Machine::dardel(),
                        omv::sim::SimConfig::ideal());
  omv::ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  for (auto _ : state) {
    omv::ompsim::SimTeam team(s, cfg, 1);
    team.begin_run(1);
    omv::ompsim::for_loop(team, omv::ompsim::Schedule::dynamic, 1,
                          threads * 256, 1e-6);
    benchmark::DoNotOptimize(team.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 256);
}
BENCHMARK(BM_DynamicScheduleLoop)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
