// Microbenchmarks for the library's own hot paths: statistics kernels, the
// OMP_PLACES parser, the event queue, the noise model, and the worksharing
// schedulers. These guard the simulator's performance envelope (a
// 254-thread x 100-rep x 10-run experiment must stay seconds).
//
// Self-timed (adaptive batch loop over steady_clock) so the harness builds
// everywhere and registers into the omnivar campaign driver like every
// other bench. Unlike the fig/table harnesses this one measures wall
// clock, so its numbers — and its JSON artifact — are inherently
// non-deterministic and outside the campaign's byte-stability guarantee.

#include <chrono>
#include <cstdlib>
#include <functional>
#include <vector>

#include "bench/harness.hpp"
#include "core/bootstrap.hpp"
#include "core/descriptive.hpp"
#include "core/rng.hpp"
#include "omp_model/worksharing.hpp"
#include "sim/event_queue.hpp"
#include "sim/noise.hpp"
#include "topo/places.hpp"

using namespace omv;

namespace {

std::vector<double> sample_data(std::size_t n) {
  Rng rng(7);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.normal(100.0, 5.0));
  return v;
}

/// Volatile sink defeating dead-code elimination of the measured calls.
volatile double g_sink = 0.0;

/// Times `fn` (which returns a double folded into the sink): repeats
/// batches until `min_seconds` of wall time accumulate, returns ns/call.
double time_ns_per_call(const std::function<double()>& fn,
                        double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::size_t batch = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < batch; ++i) g_sink = g_sink + fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_seconds) {
      return s * 1e9 / static_cast<double>(batch);
    }
    // Grow toward the time target (at least double to converge fast).
    batch *= 2;
  }
}

int run_micro(cli::RunContext& ctx) {
  harness::header(
      ctx,
      "Micro — core hot-path timings (ns/op, wall clock)",
      "(not a paper experiment; guards the simulator's performance "
      "envelope — values are machine-dependent)");
  // Self-timed wall-clock cases, no protocol() cells: nothing to declare
  // on an enumeration pass, and the timing loops must not burn real time.
  if (ctx.enumerating()) return 0;

  const bool quick = [] {
    const char* q = std::getenv("OMNIVAR_QUICK");
    return q && q[0] == '1';
  }();
  const double budget = quick ? 0.005 : 0.05;

  struct Case {
    const char* name;
    std::function<double()> fn;
  };

  const auto d100 = sample_data(100);
  const auto d1k = sample_data(1000);
  const auto d10k = sample_data(10000);
  const auto platform = harness::primary(ctx);
  const auto& machine = platform.machine;
  // Explicit-places parse micro sized to the machine (Dardel:
  // "{0:4}:32:4,{128:4}:32:4" — two striped socket-halves).
  const std::size_t pl_stride =
      std::max<std::size_t>(1, machine.n_threads() / 64);
  const std::size_t pl_count =
      std::max<std::size_t>(1, machine.n_threads() / (2 * pl_stride));
  const std::string places_explicit =
      "{0:" + std::to_string(pl_stride) + "}:" + std::to_string(pl_count) +
      ":" + std::to_string(pl_stride) + ",{" +
      std::to_string(machine.n_threads() / 2) + ":" +
      std::to_string(pl_stride) + "}:" + std::to_string(pl_count) + ":" +
      std::to_string(pl_stride);

  // Per-invocation state for the stateful micros, captured by reference —
  // NOT function-local statics, which would dangle on a second invocation
  // of this run function (NoiseModel keeps a reference to `machine`) and
  // leak measurement position across calls.
  sim::NoiseModel noise(machine, platform.config.noise);
  noise.begin_run(1, machine.primary_threads());
  double noise_t = 0.0;
  sim::Simulator dyn_sim(machine, sim::SimConfig::ideal());

  std::vector<Case> cases;
  cases.push_back({"summarize/1k",
                   [&] { return stats::summarize(d1k).mean; }});
  cases.push_back({"summarize/10k",
                   [&] { return stats::summarize(d10k).mean; }});
  cases.push_back({"online_stats/1k", [&] {
                     stats::OnlineStats s;
                     for (double x : d1k) s.add(x);
                     return s.variance();
                   }});
  cases.push_back({"percentile99/10k",
                   [&] { return stats::percentile(d10k, 99.0); }});
  cases.push_back({"bootstrap_mean_ci/100x200", [&] {
                     return stats::bootstrap_mean_ci(d100, 200).lo;
                   }});
  cases.push_back({"places_parse/abstract", [&] {
                     return static_cast<double>(
                         topo::parse_places("cores", machine).size());
                   }});
  cases.push_back({"places_parse/explicit", [&] {
                     return static_cast<double>(
                         topo::parse_places(places_explicit, machine)
                             .size());
                   }});
  cases.push_back({"event_queue/1k", [&] {
                     sim::EventQueue q;
                     Rng rng(3);
                     for (std::size_t i = 0; i < 1000; ++i) {
                       q.schedule(rng.next_double(), [] {});
                     }
                     q.run();
                     return q.now();
                   }});
  cases.push_back({"noise_preemption/query", [&] {
                     noise_t += 0.001;
                     return noise.preemption_delay(5, noise_t,
                                                   noise_t + 0.001);
                   }});
  const std::size_t dyn_threads =
      std::min<std::size_t>(16, machine.n_threads());
  cases.push_back({"dynamic_schedule/16thr", [&] {
                     ompsim::TeamConfig cfg;
                     cfg.n_threads = dyn_threads;
                     ompsim::SimTeam team(dyn_sim, cfg, 1);
                     team.begin_run(1);
                     ompsim::for_loop(team, ompsim::Schedule::dynamic, 1,
                                      dyn_threads * 256, 1e-6);
                     return team.now();
                   }});

  report::Table t({"case", "ns/op"});
  bool all_positive = true;
  for (const auto& c : cases) {
    const double ns = time_ns_per_call(c.fn, budget);
    all_positive &= ns > 0.0;
    t.add_row({c.name, report::fmt_fixed(ns, 1)});
    ctx.metric(std::string("ns_per_op/") + c.name, ns);
  }
  ctx.table("hot_paths", t);
  ctx.verdict(all_positive, "all hot-path micros measured");
  return 0;
}

[[maybe_unused]] const cli::Registration reg{
    "micro_core", "Micro — core hot-path wall-clock timings (ns/op)",
    run_micro};

}  // namespace
