// Example: frequency logging during a benchmark, the paper's Section 5.4
// methodology as a library workflow.
//
// Native mode (default): starts the background logger on this host (sysfs
// CPUFreq, pinned to a spare core when possible) while a small OpenMP
// kernel runs, then reports the trace. Falls back to the simulator
// automatically when sysfs frequencies are unreadable (containers, etc.).

#include <cstdio>

#include "bench_suite/native.hpp"
#include "bench_suite/schedbench_sim.hpp"
#include "freqlog/logger.hpp"
#include "topo/affinity.hpp"

int main() {
  using namespace omv;

  freqlog::SysfsFreqReader sysfs;
  if (sysfs.available()) {
    std::printf("Native CPUFreq available (%zu cores): logging while a "
                "parallel kernel runs...\n",
                sysfs.n_cores());
    // Pin the logger away from core 0 if we have more than one CPU.
    std::optional<std::size_t> logger_cpu;
    if (topo::usable_cpu_count() > 1) logger_cpu = sysfs.n_cores() - 1;
    freqlog::BackgroundLogger logger(sysfs, /*interval_s=*/0.01, logger_cpu);

    bench::NativeConfig cfg;
    cfg.n_threads = bench::native_max_threads();
    auto params = bench::EpccParams::schedbench();
    params.itersperthr = 512;
    params.delay_us = 5.0;
    bench::NativeSchedBench sb(cfg, params);
    for (int rep = 0; rep < 5; ++rep) {
      (void)sb.rep_time_us("static", 1);
    }
    const auto trace = logger.stop();
    const auto e = trace.extremes();
    std::printf("trace: %zu samples, min %.2f / mean %.2f / max %.2f GHz\n",
                trace.size(), e.min, e.mean, e.max);
    if (e.max > 0.0) {
      std::printf("%.1f%% of samples below 95%% of the observed max\n",
                  trace.fraction_below(e.max, 0.95) * 100.0);
    }
    return 0;
  }

  std::printf("No readable CPUFreq sysfs here — demonstrating against the "
              "simulated Vera node instead.\n\n");
  sim::SimConfig cfg = sim::SimConfig::vera();
  cfg.freq = sim::FreqConfig::vera_dippy();
  sim::Simulator s(topo::Machine::vera(), cfg);

  ompsim::TeamConfig team_cfg;
  team_cfg.n_threads = 16;
  team_cfg.places_spec = "{0}:8:1,{16}:8:1";  // cross-NUMA: dips expected
  team_cfg.bind = topo::ProcBind::close;
  bench::SimSchedBench sb(s, team_cfg);

  ompsim::SimTeam team(s, team_cfg, 1);
  team.begin_run(1);
  for (int rep = 0; rep < 20; ++rep) {
    (void)sb.rep_time_us(team, ompsim::Schedule::static_, 1);
  }

  freqlog::SimFreqReader reader(s.freq(), s.machine().n_cores());
  const auto trace = freqlog::sample_sim(reader, 0.0, team.now(), 0.01);
  const auto e = trace.extremes();
  const double fmax = s.machine().max_ghz();
  std::printf("simulated trace over %.2f s of benchmark time:\n",
              team.now());
  std::printf("  %zu samples, min %.2f / mean %.2f / max %.2f GHz\n",
              trace.size(), e.min, e.mean, e.max);
  std::printf("  %.1f%% of samples below 0.95*fmax, %zu dip episodes\n",
              trace.fraction_below(fmax, 0.95) * 100.0,
              trace.episode_count(fmax, 0.95));
  return 0;
}
