// Quickstart: measure and characterize the execution-time variability of
// your own OpenMP region with omnivar, on the machine you are running on.
//
//   $ ./quickstart [n_threads]
//
// Runs a small parallel kernel under the paper's protocol (several runs x
// repetitions), prints the per-run statistics, the between-run vs
// within-run variance split, and the qualitative variability signature.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_suite/epcc.hpp"
#include "bench_suite/native.hpp"
#include "core/characterize.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

int main(int argc, char** argv) {
  using namespace omv;

  std::size_t threads = bench::native_max_threads();
  if (argc > 1) threads = std::strtoul(argv[1], nullptr, 10);
  std::printf("omnivar quickstart: measuring a parallel-for with %zu "
              "OpenMP thread(s)\n\n",
              threads);

  // The kernel under test: a parallel-for over a calibrated spin delay —
  // substitute any function returning one repetition's time in
  // microseconds.
  const double iters_per_us = bench::calibrate_delay_per_us();
  const auto kernel = [&](const RepContext&) {
    return time_micros([&] {
#if defined(_OPENMP)
      omp_set_num_threads(static_cast<int>(threads));
#pragma omp parallel for schedule(static)
#endif
      for (int i = 0; i < 256; ++i) {
        bench::spin_delay(5.0, iters_per_us);
      }
    });
  };

  ExperimentSpec spec;
  spec.name = "quickstart";
  spec.runs = 5;
  spec.reps = 30;
  spec.warmup = 3;
  const RunMatrix m = run_experiment(spec, kernel);

  report::Table t({"run #", "mean (us)", "min (us)", "max (us)", "cv"});
  for (std::size_t r = 0; r < m.runs(); ++r) {
    const auto s = m.run_summary(r);
    t.add_row({std::to_string(r + 1), report::fmt_fixed(s.mean, 1),
               report::fmt_fixed(s.min, 1), report::fmt_fixed(s.max, 1),
               report::fmt_fixed(s.cv, 4)});
  }
  std::printf("%s\n", t.render().c_str());

  const auto vc = m.variance_components();
  std::printf("between-run variance share (ICC): %.1f%%  (F=%.2f, p=%.3g)\n",
              vc.icc * 100.0, vc.f_statistic, vc.p_value);

  const auto c = characterize(m);
  std::printf("variability signature: %s\n", c.to_string().c_str());
  std::printf("pooled: mean %.1f us, cv %.4f, norm min/max %.3f/%.3f\n",
              c.pooled.mean, c.pooled.cv, c.pooled.norm_min(),
              c.pooled.norm_max());
  std::printf("\nHints: pin threads (OMP_PLACES=cores OMP_PROC_BIND=close), "
              "leave SMT siblings free,\nand spare a couple of cores for "
              "the OS — see the paper reproduction in bench/.\n");
  return 0;
}
