// Example: author a custom platform as a *scenario file* and sweep a
// scaling study on it.
//
// Models a hypothetical single-socket 48-core machine with 4 NUMA domains
// and SMT-2 — written out in the scenario-file format, loaded back through
// the scenario layer (exactly what `omnivar --scenario my.scenario` does)
// — and asks: at which thread count does the reduction construct's
// variability take off, and is it better to use spread or close binding?

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench_suite/syncbench_sim.hpp"
#include "core/report.hpp"
#include "scenario/registry.hpp"

int main() {
  using namespace omv;

  // 1) Author the scenario: inherit Dardel's noise/cost calibration, swap
  //    in the custom geometry and a narrower memory system. This is the
  //    same key=value format `omnivar --scenario <file>` accepts.
  const char* scenario_text =
      "# a hypothetical desktop-EPYC-like box\n"
      "name = my-epyc\n"
      "display = MyEpyc\n"
      "base = dardel\n"
      "machine.label = my-epyc\n"
      "machine.sockets = 1\n"
      "machine.numa_per_socket = 4\n"
      "machine.cores_per_numa = 12\n"
      "machine.smt = 2\n"
      "machine.base_ghz = 2.4\n"
      "machine.max_ghz = 3.6\n"
      "mem.domain_gbps = 40\n";
  const std::string path = "my_epyc.scenario";
  {
    std::ofstream f(path, std::ios::binary);
    f << scenario_text;
  }

  // 2) Load it back through the scenario layer and materialize.
  const auto spec = scenario::load_file(path);
  sim::Simulator s(spec.machine.build(), spec.sim);
  std::remove(path.c_str());

  ExperimentSpec espec;
  espec.runs = 8;
  espec.reps = 40;
  espec.seed = 7;
  if (const char* q = std::getenv("OMNIVAR_QUICK"); q && q[0] == '1') {
    espec.runs = 3;
    espec.reps = 10;
  }

  std::printf("Scenario %s [%s]: %s\n", spec.display.c_str(),
              spec.fingerprint().c_str(), spec.geometry_summary().c_str());
  std::printf("Custom platform: %zu cores, %zu NUMA domains, SMT-%zu\n\n",
              s.machine().n_cores(), s.machine().n_numa(),
              s.machine().max_smt_per_core());

  report::Series series("threads",
                        {"close_us", "close_cv", "spread_us", "spread_cv"});
  for (std::size_t t : {4ul, 8ul, 16ul, 24ul, 36ul, 46ul}) {
    std::vector<double> row;
    for (auto bind : {topo::ProcBind::close, topo::ProcBind::spread}) {
      ompsim::TeamConfig team;
      team.n_threads = t;
      team.places_spec = "cores";  // one place per physical core
      team.bind = bind;
      bench::SimSyncBench sb(s, team);
      const auto m =
          sb.run_protocol(bench::SyncConstruct::reduction, espec);
      const double per_instance =
          m.grand_mean() /
          static_cast<double>(sb.innerreps(bench::SyncConstruct::reduction));
      row.push_back(per_instance);
      row.push_back(m.pooled_summary().cv);
    }
    series.add(static_cast<double>(t), std::move(row));
  }
  std::printf("%s\n", series.render(report::Format::ascii, 4).c_str());
  std::printf(
      "Reading: spread pays NUMA-span barrier costs earlier; close defers\n"
      "them until the team outgrows a domain. The cv columns show where\n"
      "each policy's variability takes off on this machine.\n");
  return 0;
}
