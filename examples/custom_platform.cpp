// Example: define a custom platform and sweep a scaling study on it.
//
// Models a hypothetical single-socket 48-core machine with 4 NUMA domains
// and SMT-2, gives it a noise/frequency profile, and asks: at which thread
// count does the reduction construct's variability take off, and is it
// better to use spread or close binding?

#include <cstdio>

#include "bench_suite/syncbench_sim.hpp"
#include "core/report.hpp"

int main() {
  using namespace omv;

  // 1 socket x 4 NUMA domains x 12 cores x SMT-2 = 96 HW threads.
  auto machine = topo::Machine::uniform("epyc-like", /*sockets=*/1,
                                        /*numa_per_socket=*/4,
                                        /*cores_per_numa=*/12, /*smt=*/2,
                                        /*base_ghz=*/2.4, /*max_ghz=*/3.6);

  sim::SimConfig cfg = sim::SimConfig::dardel();  // reuse the noise profile
  cfg.mem.domain_gbps = 40.0;
  sim::Simulator s(std::move(machine), cfg);

  ExperimentSpec spec;
  spec.runs = 8;
  spec.reps = 40;
  spec.seed = 7;

  std::printf("Custom platform: %zu cores, %zu NUMA domains, SMT-%zu\n\n",
              s.machine().n_cores(), s.machine().n_numa(),
              s.machine().smt_per_core());

  report::Series series("threads",
                        {"close_us", "close_cv", "spread_us", "spread_cv"});
  for (std::size_t t : {4ul, 8ul, 16ul, 24ul, 36ul, 46ul}) {
    std::vector<double> row;
    for (auto bind : {topo::ProcBind::close, topo::ProcBind::spread}) {
      ompsim::TeamConfig team;
      team.n_threads = t;
      team.places_spec = "cores";  // one place per physical core
      team.bind = bind;
      bench::SimSyncBench sb(s, team);
      const auto m =
          sb.run_protocol(bench::SyncConstruct::reduction, spec);
      const double per_instance =
          m.grand_mean() /
          static_cast<double>(sb.innerreps(bench::SyncConstruct::reduction));
      row.push_back(per_instance);
      row.push_back(m.pooled_summary().cv);
    }
    series.add(static_cast<double>(t), std::move(row));
  }
  std::printf("%s\n", series.render(report::Format::ascii, 4).c_str());
  std::printf(
      "Reading: spread pays NUMA-span barrier costs earlier; close defers\n"
      "them until the team outgrows a domain. The cv columns show where\n"
      "each policy's variability takes off on this machine.\n");
  return 0;
}
