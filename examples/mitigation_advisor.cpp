// Example: the measurement -> characterization -> mitigation pipeline.
//
// Simulates a badly configured experiment (unpinned, SMT co-scheduled, no
// spare cores) on a Dardel-like node, characterizes the resulting
// distribution, asks the advisor for a fix, applies the recommended
// configuration, and re-measures — closing the loop the paper's conclusion
// sketches.

#include <cstdio>

#include "bench_suite/syncbench_sim.hpp"
#include "core/advisor.hpp"
#include "core/characterize.hpp"
#include "core/report.hpp"

int main() {
  using namespace omv;

  sim::Simulator dardel(topo::Machine::dardel(), sim::SimConfig::dardel());
  ExperimentSpec spec;
  spec.runs = 8;
  spec.reps = 40;
  spec.seed = 99;

  // Step 1: the "bad" configuration — unbound threads.
  ompsim::TeamConfig bad;
  bad.n_threads = 128;
  bad.bind = topo::ProcBind::none;
  bench::SimSyncBench bad_bench(dardel, bad);
  const auto m_bad =
      bad_bench.run_protocol(bench::SyncConstruct::reduction, spec);
  const auto ch_bad = characterize(m_bad);
  std::printf("observed (unpinned, 128 threads): mean %.1f us, cv %.3f, "
              "signature %s\n\n",
              m_bad.pooled_summary().mean, m_bad.pooled_summary().cv,
              ch_bad.to_string().c_str());

  // Step 2: ask the advisor.
  advisor::ObservedConfig obs;
  obs.n_threads = 128;
  obs.pinned = false;
  obs.used_smt_siblings = false;
  obs.spare_cores = 0;
  const auto advice = advisor::advise(dardel.machine(), ch_bad, obs,
                                      advisor::WorkloadKind::sync_heavy);
  std::printf("%s\n", advice.summary.c_str());
  for (const auto& r : advice.recommendations) {
    std::printf("  * %s\n      %s\n", r.action.c_str(),
                r.rationale.c_str());
    if (!r.omp_proc_bind.empty()) {
      std::printf("      OMP_NUM_THREADS=%zu OMP_PROC_BIND=%s\n",
                  r.omp_num_threads, r.omp_proc_bind.c_str());
    }
  }

  // Step 3: apply the primary recommendation and re-measure.
  const auto& rec = advice.recommendations.front();
  ompsim::TeamConfig good;
  good.n_threads = rec.omp_num_threads ? rec.omp_num_threads : 126;
  good.places_spec = rec.omp_places.empty() ? "threads" : rec.omp_places;
  good.bind = topo::ProcBind::close;
  bench::SimSyncBench good_bench(dardel, good);
  const auto m_good =
      good_bench.run_protocol(bench::SyncConstruct::reduction, spec);
  const auto ch_good = characterize(m_good);

  std::printf("\nafter applying '%s' (%zu threads, close binding):\n",
              rec.action.c_str(), good.n_threads);
  std::printf("  mean %.1f us, cv %.4f, signature %s\n",
              m_good.pooled_summary().mean, m_good.pooled_summary().cv,
              ch_good.to_string().c_str());
  std::printf("  worst-case repetition improved %.0fx (%.1f -> %.1f us)\n",
              m_bad.pooled_summary().max / m_good.pooled_summary().max,
              m_bad.pooled_summary().max, m_good.pooled_summary().max);
  return 0;
}
