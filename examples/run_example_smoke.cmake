# Smoke-check one example binary: it must exit 0 and print something.
# Invoked by the example_* ctest entries (see CMakeLists.txt) as
#   cmake -DEXE=<binary> -P run_example_smoke.cmake
execute_process(COMMAND ${EXE}
  OUTPUT_VARIABLE example_stdout
  RESULT_VARIABLE example_rc)
if(NOT example_rc EQUAL 0)
  message(FATAL_ERROR "example exited with '${example_rc}'")
endif()
string(STRIP "${example_stdout}" example_stripped)
if(example_stripped STREQUAL "")
  message(FATAL_ERROR "example produced empty stdout")
endif()
message("${example_stdout}")
