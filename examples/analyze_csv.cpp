// Example: offline analysis of an archived experiment.
//
//   $ ./analyze_csv <run-matrix.csv>
//
// Reads a RunMatrix CSV (see core/trace_io.hpp; produced by
// io::save_run_matrix or any tool emitting "run,rep,time" rows), prints
// the full statistical characterization — per-run summaries, variance
// decomposition, outliers, modality, autocorrelation-based periodic-noise
// detection — and the mitigation advice for an assumed unbound
// configuration. When no file is given, a demo matrix is generated.

#include <cstdio>
#include <sstream>

#include "core/advisor.hpp"
#include "core/autocorrelation.hpp"
#include "core/characterize.hpp"
#include "core/outliers.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "core/trace_io.hpp"

namespace {

omv::RunMatrix demo_matrix() {
  // A synthetic "unpinned-looking" experiment: base 100 us, a slow run,
  // a periodic disturbance every 10 reps, rare heavy-tail spikes.
  omv::Rng rng(2024);
  omv::RunMatrix m("demo");
  for (int r = 0; r < 10; ++r) {
    std::vector<double> reps;
    for (int k = 0; k < 100; ++k) {
      double t = 100.0 + rng.normal(0.0, 0.8);
      if (r == 6) t += 12.0;
      if (k % 10 == 0) t += 6.0;
      if (rng.bernoulli(0.03)) t += rng.pareto(30.0, 1.6);
      reps.push_back(t);
    }
    m.add_run(std::move(reps));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omv;

  RunMatrix m = argc > 1 ? io::load_run_matrix(argv[1], argv[1])
                         : demo_matrix();
  if (argc <= 1) {
    std::printf("(no input file — analyzing a generated demo matrix; pass "
                "a 'run,rep,time' CSV to analyze your own)\n\n");
  }

  report::Table t({"run #", "mean", "min", "max", "cv"});
  for (std::size_t r = 0; r < m.runs(); ++r) {
    const auto s = m.run_summary(r);
    t.add_row({std::to_string(r + 1), report::fmt_fixed(s.mean, 2),
               report::fmt_fixed(s.min, 2), report::fmt_fixed(s.max, 2),
               report::fmt_fixed(s.cv, 4)});
  }
  std::printf("%s\n", t.render().c_str());

  const auto vc = m.variance_components();
  std::printf("variance split: %.1f%% between-run / %.1f%% within-run "
              "(F=%.2f, p=%.3g)\n",
              vc.icc * 100.0, (1.0 - vc.icc) * 100.0, vc.f_statistic,
              vc.p_value);

  const auto flat = m.flatten();
  const auto out = stats::tukey_outliers(flat, 3.0);
  std::printf("far-out outliers: %zu of %zu reps (%s tail)\n", out.count(),
              flat.size(), stats::tail_name(out.tail));

  // Periodic disturbance? Check each run's repetition series.
  std::size_t periodic_runs = 0;
  std::size_t detected_lag = 0;
  for (std::size_t r = 0; r < m.runs(); ++r) {
    const auto p = stats::dominant_period(m.run(r), 40);
    if (p.significant) {
      ++periodic_runs;
      detected_lag = p.lag;
    }
  }
  if (periodic_runs > m.runs() / 2) {
    std::printf("periodic disturbance: every ~%zu repetitions (in %zu/%zu "
                "runs) — a fixed-interval noise source\n",
                detected_lag, periodic_runs, m.runs());
  } else {
    std::printf("no consistent periodic disturbance detected\n");
  }

  const auto ch = characterize(m);
  std::printf("signature: %s\n\n", ch.to_string().c_str());

  // Mitigation advice, assuming the runs came from an unbound team on a
  // Vera-like node (adjust ObservedConfig for your setup).
  advisor::ObservedConfig obs;
  obs.n_threads = 16;
  obs.pinned = false;
  const auto advice =
      advisor::advise(topo::Machine::vera(), ch, obs);
  std::printf("%s\n", advice.summary.c_str());
  for (const auto& r : advice.recommendations) {
    std::printf("  * %s\n", r.action.c_str());
  }
  return 0;
}
