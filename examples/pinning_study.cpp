// Example: a pinning study on a simulated 128-core Dardel node.
//
// Shows the library's experiment pipeline end-to-end: build a simulated
// platform, run the EPCC reduction micro-benchmark pinned and unpinned,
// compare the distributions with a statistical test, and print the
// characterization — the workflow behind the paper's Fig. 4.

#include <cstdio>

#include "bench_suite/syncbench_sim.hpp"
#include "core/characterize.hpp"
#include "core/report.hpp"
#include "core/stat_tests.hpp"

int main() {
  using namespace omv;

  sim::Simulator dardel(topo::Machine::dardel(), sim::SimConfig::dardel());

  ExperimentSpec spec;
  spec.runs = 10;
  spec.reps = 50;
  spec.seed = 42;

  // Pinned: OMP_PLACES=threads, OMP_PROC_BIND=close.
  ompsim::TeamConfig pinned;
  pinned.n_threads = 128;
  pinned.places_spec = "threads";
  pinned.bind = topo::ProcBind::close;
  bench::SimSyncBench pinned_bench(dardel, pinned);
  const auto m_pinned =
      pinned_bench.run_protocol(bench::SyncConstruct::reduction, spec);

  // Unpinned: the OS places and migrates threads.
  ompsim::TeamConfig unpinned = pinned;
  unpinned.bind = topo::ProcBind::none;
  bench::SimSyncBench unpinned_bench(dardel, unpinned);
  const auto m_unpinned =
      unpinned_bench.run_protocol(bench::SyncConstruct::reduction, spec);

  report::Table t({"config", "grand mean (us)", "pooled cv", "max/min",
                   "signature"});
  const auto add_row = [&](const char* name, const RunMatrix& m) {
    const auto s = m.pooled_summary();
    t.add_row({name, report::fmt_fixed(s.mean, 1),
               report::fmt_fixed(s.cv, 4),
               report::fmt_fixed(s.min > 0 ? s.max / s.min : 0.0, 1),
               characterize(m).to_string()});
  };
  add_row("pinned (close)", m_pinned);
  add_row("unpinned", m_unpinned);
  std::printf("%s\n", t.render().c_str());

  const auto bf =
      stats::brown_forsythe(m_pinned.flatten(), m_unpinned.flatten());
  std::printf(
      "Brown-Forsythe variance test: F=%.2f, p=%.3g -> pinning %s the\n"
      "variability (alpha=0.05)\n",
      bf.statistic, bf.p_value,
      bf.significant ? "significantly reduces" : "does not clearly change");
  return 0;
}
